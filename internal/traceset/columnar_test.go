package traceset

import (
	"os"
	"testing"

	"repro/internal/trace"
)

// TestIngestWritesColumnarSidecar: committing an entry writes a valid
// .cols slab beside the .gztr, inspectable through Columnar and loadable
// through LoadSlab as an mmap-backed Columns whose records match the
// canonical stream.
func TestIngestWritesColumnarSidecar(t *testing.T) {
	reg := openTestRegistry(t)
	recs := testRecords(t, 1_000)
	m, _, err := reg.IngestRecords(recs, trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}

	ci, err := reg.Columnar(m.Address)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Present || !ci.Valid {
		t.Fatalf("columnar info after ingest: %+v", ci)
	}
	if want := int64(trace.ColumnarSize(len(recs))); ci.Bytes != want {
		t.Errorf("slab bytes = %d, want %d", ci.Bytes, want)
	}
	if ci.PCBytes != 8*int64(len(recs)) || ci.KindBytes != int64(len(recs)) {
		t.Errorf("plane sizes = %+v", ci)
	}

	slab, err := reg.LoadSlab(m.Name(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cols, ok := slab.(*trace.Columns)
	if !ok {
		t.Fatalf("LoadSlab returned %T, want *trace.Columns", slab)
	}
	if cols.Len() != len(recs) {
		t.Fatalf("slab has %d records, want %d", cols.Len(), len(recs))
	}
	for i, want := range recs {
		if got := cols.At(i); got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}

	// A truncated view shares the mapping.
	short, err := reg.LoadSlab(m.Name(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if short.Len() != 10 || short.At(9) != recs[9] {
		t.Errorf("prefix slab: len %d", short.Len())
	}
}

// TestLoadSlabHeapFallback: a missing or damaged .cols file silently
// falls back to the heap-decoded record stream — the sidecar is derived
// data, never a correctness dependency.
func TestLoadSlabHeapFallback(t *testing.T) {
	reg := openTestRegistry(t)
	recs := testRecords(t, 500)
	m, _, err := reg.IngestRecords(recs, trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(reg.colsPath(m.Address)); err != nil {
		t.Fatal(err)
	}

	if ci, err := reg.Columnar(m.Address); err != nil || ci.Present {
		t.Fatalf("columnar info after removal: %+v, %v", ci, err)
	}
	slab, err := reg.LoadSlab(m.Name(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, mapped := slab.(*trace.Columns); mapped {
		t.Fatal("LoadSlab mapped a slab that does not exist")
	}
	if slab.Len() != len(recs) || slab.At(7) != recs[7] {
		t.Fatalf("fallback slab: len %d", slab.Len())
	}

	// Damage (truncate) instead of remove: Columnar flags it invalid and
	// LoadSlab still falls back.
	m2, _, err := reg.IngestRecords(testRecords(t, 400), trace.FormatChampSim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(reg.colsPath(m2.Address), 40); err != nil {
		t.Fatal(err)
	}
	if ci, _ := reg.Columnar(m2.Address); !ci.Present || ci.Valid {
		t.Fatalf("truncated slab reported %+v", ci)
	}
	if slab, err := reg.LoadSlab(m2.Name(), 0); err != nil || slab.Len() != 400 {
		t.Fatalf("fallback after damage: %v", err)
	}
}

// TestBuildColumnarBackfill is the `gazetrace migrate` core: a registry
// entry without a valid slab gets one rebuilt from its record stream;
// entries already valid are skipped.
func TestBuildColumnarBackfill(t *testing.T) {
	reg := openTestRegistry(t)
	m, _, err := reg.IngestRecords(testRecords(t, 300), trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh ingest: already valid, nothing to do.
	if created, err := reg.BuildColumnar(m.Address); err != nil || created {
		t.Fatalf("BuildColumnar on a valid slab: created=%v err=%v", created, err)
	}

	if err := os.Remove(reg.colsPath(m.Address)); err != nil {
		t.Fatal(err)
	}
	created, err := reg.BuildColumnar(m.Address)
	if err != nil || !created {
		t.Fatalf("backfill: created=%v err=%v", created, err)
	}
	ci, err := reg.Columnar(m.Address)
	if err != nil || !ci.Present || !ci.Valid {
		t.Fatalf("columnar info after backfill: %+v, %v", ci, err)
	}
	if slab, err := reg.LoadSlab(m.Name(), 0); err != nil || slab.Len() != 300 {
		t.Fatalf("LoadSlab after backfill: %v", err)
	}

	if _, err := reg.BuildColumnar("00ff"); err == nil {
		t.Error("BuildColumnar accepted an unknown address")
	}
}

// TestDeleteRemovesColumnar: deleting an entry removes the derived slab
// with it — a later re-ingest must rebuild, not resurrect.
func TestDeleteRemovesColumnar(t *testing.T) {
	reg := openTestRegistry(t)
	m, _, err := reg.IngestRecords(testRecords(t, 200), trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}
	path := reg.colsPath(m.Address)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no slab after ingest: %v", err)
	}
	if err := reg.Delete(m.Address); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("slab survived Delete: %v", err)
	}
}
