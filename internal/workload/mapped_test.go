package workload

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// slabSource is a fakeSource that also serves mmap-backed columnar slabs
// — the SlabSource shape the trace registry implements.
type slabSource struct {
	fakeSource
	cols *trace.Columns
}

func (s *slabSource) LoadSlab(name string, n int) (trace.Records, error) {
	if name != s.name {
		return nil, errTestNoTrace
	}
	return s.cols.Prefix(n), nil
}

func mapRecords(t *testing.T, recs []trace.Record) *trace.Columns {
	t.Helper()
	path := filepath.Join(t.TempDir(), "slab.cols")
	if err := os.WriteFile(path, trace.EncodeColumnar(recs), 0o644); err != nil {
		t.Fatal(err)
	}
	cols, err := trace.MapColumnar(path)
	if err != nil {
		t.Skipf("mmap unavailable: %v", err)
	}
	return cols
}

// TestMaterializeRecordsMapped pins the acceptance criterion for mapped
// slabs: materializing through a SlabSource keeps the heap gauge
// (trace_cache_bytes) flat while trace_cache_mapped_bytes reflects the
// mapping, the mapped entry survives a heap-budget squeeze, and
// InvalidateTrace releases the accounting.
func TestMaterializeRecordsMapped(t *testing.T) {
	ResetTraceCache()
	ResetSources()
	defer ResetSources()
	defer ResetTraceCache()

	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{PC: uint64(i), Addr: uint64(i) * 64, NonMem: uint16(i % 3)}
	}
	cols := mapRecords(t, recs)
	name := IngestedName("feedface")
	RegisterSource(&slabSource{fakeSource: fakeSource{name: name, recs: recs}, cols: cols})

	slab, err := MaterializeRecords(name, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := slab.(*trace.Columns); !ok || !got.Mapped() {
		t.Fatalf("MaterializeRecords returned %T, want a mapped *trace.Columns", slab)
	}
	st := TraceCacheStats()
	if st.Bytes != 0 {
		t.Errorf("heap bytes = %d after a mapped materialization, want 0", st.Bytes)
	}
	if want := int64(trace.ColumnarSize(100)); st.MappedBytes != want {
		t.Errorf("mapped bytes = %d, want %d", st.MappedBytes, want)
	}

	// Same key hits; a different length is a distinct mapped entry.
	if _, err := MaterializeRecords(name, 100); err != nil {
		t.Fatal(err)
	}
	if st := TraceCacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}

	// A heap-budget squeeze must not evict the mapped entry: its bytes
	// are kernel page cache, not cache-budget heap.
	SetTraceCacheBudget(1)
	defer SetTraceCacheBudget(0)
	if st := TraceCacheStats(); st.Entries != 1 || st.MappedBytes == 0 {
		t.Errorf("budget squeeze dropped the mapped entry: %+v", st)
	}

	InvalidateTrace(name)
	if st := TraceCacheStats(); st.Entries != 0 || st.MappedBytes != 0 {
		t.Errorf("InvalidateTrace left mapped accounting: %+v", st)
	}
}

// TestMaterializeRecordsHeapFallback: a plain Source (no LoadSlab) serves
// MaterializeRecords through the heap path, sharing bytes accounting with
// Materialize.
func TestMaterializeRecordsHeapFallback(t *testing.T) {
	ResetTraceCache()
	ResetSources()
	defer ResetSources()
	defer ResetTraceCache()

	name := IngestedName("cafe0001")
	recs := []trace.Record{{PC: 1, Addr: 64}, {PC: 2, Addr: 128}}
	RegisterSource(&fakeSource{name: name, recs: recs})

	slab, err := MaterializeRecords(name, 2)
	if err != nil {
		t.Fatal(err)
	}
	if slab.Len() != 2 || slab.At(1) != recs[1] {
		t.Fatalf("heap-fallback slab = %v", slab)
	}
	st := TraceCacheStats()
	if st.MappedBytes != 0 {
		t.Errorf("heap fallback accounted %d mapped bytes", st.MappedBytes)
	}
	if st.Bytes == 0 {
		t.Error("heap fallback accounted no heap bytes")
	}
}
