// Package dram models the off-chip memory system: channels, ranks, banks,
// row buffers and the shared per-channel data bus. It reproduces the two
// DRAM behaviours the paper's evaluation depends on:
//
//   - latency structure: row-buffer hits cost tCAS, misses pay
//     tRP+tRCD+tCAS (Table II: 12.5ns each), so spatially dense request
//     streams are cheaper per access than scattered ones;
//   - bandwidth contention: every 64B transfer occupies the channel data
//     bus for a burst, so aggressive prefetchers queue behind their own
//     traffic and behind other cores (the effect that degrades PMP and
//     DSPatch in the paper's 4- and 8-core experiments, Fig 14).
package dram

import (
	"fmt"

	"repro/internal/mem"
)

// Config mirrors Table II's DRAM rows. The zero value is not usable; use
// DDR4Config or fill every field.
type Config struct {
	Channels       int
	RanksPerChan   int
	BanksPerRank   int
	MTPS           int     // mega-transfers per second (e.g. 3200)
	BusBytes       int     // data bus width in bytes (8)
	RowBufferBytes int     // per-bank row buffer (2048)
	CPUGHz         float64 // CPU clock for ns→cycle conversion (4.0)
	TRPns          float64
	TRCDns         float64
	TCASns         float64
}

// DDR4Config returns the paper's DDR4-3200 configuration for the given
// channel/rank layout (Table II: 1C single channel 1 rank, 2C dual channel
// 1 rank, 4C dual channel 2 ranks, 8C quad channel 2 ranks).
func DDR4Config(cores int) Config {
	cfg := Config{
		BanksPerRank:   8,
		MTPS:           3200,
		BusBytes:       8,
		RowBufferBytes: 2048,
		CPUGHz:         4.0,
		TRPns:          12.5,
		TRCDns:         12.5,
		TCASns:         12.5,
	}
	switch {
	case cores <= 1:
		cfg.Channels, cfg.RanksPerChan = 1, 1
	case cores == 2:
		cfg.Channels, cfg.RanksPerChan = 2, 1
	case cores <= 4:
		cfg.Channels, cfg.RanksPerChan = 2, 2
	default:
		cfg.Channels, cfg.RanksPerChan = 4, 2
	}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("dram: channels must be a positive power of two, got %d", c.Channels)
	case c.RanksPerChan <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: ranks/banks must be positive")
	case c.MTPS <= 0 || c.BusBytes <= 0 || c.RowBufferBytes <= 0:
		return fmt.Errorf("dram: MTPS/bus/row buffer must be positive")
	case c.CPUGHz <= 0:
		return fmt.Errorf("dram: CPU frequency must be positive")
	}
	return nil
}

// BurstCycles returns the CPU cycles one 64B line transfer occupies the
// channel data bus.
func (c Config) BurstCycles() float64 {
	bytesPerSec := float64(c.MTPS) * 1e6 * float64(c.BusBytes)
	seconds := float64(mem.LineSize) / bytesPerSec
	return seconds * c.CPUGHz * 1e9
}

func (c Config) cyclesOf(ns float64) float64 { return ns * c.CPUGHz }

type bank struct {
	openRow uint64
	hasRow  bool
	// nextCAS is the earliest cycle the bank can issue its next column
	// access: row hits pipeline at burst rate, row misses pay precharge +
	// activate first.
	nextCAS  float64
	accesses uint64
	rowHits  uint64
}

type channel struct {
	banks     []bank
	busFreeAt float64
}

// Stats holds DRAM counters.
type Stats struct {
	Requests uint64
	RowHits  uint64
	// BusBusyCycles accumulates data-bus occupancy, the utilization signal
	// DSPatch-style bandwidth-aware policies read.
	BusBusyCycles float64
}

// DRAM is the memory system model. It is not safe for concurrent use; the
// simulator serializes accesses in (approximate) time order.
type DRAM struct {
	cfg      Config
	channels []channel
	rowBits  uint
	burst    float64
	tRP      float64
	tRCD     float64
	tCAS     float64

	// chanShift and bankMask/bankShift precompute the address-mapping
	// arithmetic (channels are a power of two by Validate; banks usually
	// are): the access hot path must not pay a loop, a modulo and a
	// division per request. bankMask < 0 marks a non-power-of-two bank
	// count, falling back to %/ (untypical configs only).
	chanShift uint
	bankMask  int
	bankShift uint

	Stats Stats
}

// New constructs a DRAM model; panics on invalid configuration.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{
		cfg:   cfg,
		burst: cfg.BurstCycles(),
		tRP:   cfg.cyclesOf(cfg.TRPns),
		tRCD:  cfg.cyclesOf(cfg.TRCDns),
		tCAS:  cfg.cyclesOf(cfg.TCASns),
	}
	d.channels = make([]channel, cfg.Channels)
	for i := range d.channels {
		d.channels[i].banks = make([]bank, cfg.RanksPerChan*cfg.BanksPerRank)
	}
	bits := uint(0)
	for s := cfg.RowBufferBytes; s > 1; s >>= 1 {
		bits++
	}
	d.rowBits = bits
	d.chanShift = uint(trailingBits(len(d.channels)))
	banks := len(d.channels[0].banks)
	if banks&(banks-1) == 0 {
		d.bankMask = banks - 1
		d.bankShift = uint(trailingBits(banks))
	} else {
		d.bankMask = -1
	}
	return d
}

// Config returns the active configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Access issues a 64B line read arriving at cycle `arrival` and returns the
// cycle its data transfer completes.
//
// Address mapping is column:channel:bank:row — consecutive lines fill a row
// before moving on, channels interleave above row-sized chunks, so spatial
// streams enjoy row-buffer hits while independent streams spread across
// banks and channels.
func (d *DRAM) Access(paddr mem.Addr, arrival float64) float64 {
	d.Stats.Requests++
	ln := mem.LineNum(paddr)
	colBits := d.rowBits - mem.LineBits // line-index bits within a row
	rowChunk := ln >> colBits           // row-sized chunk number
	chIdx := int(rowChunk) & (len(d.channels) - 1)
	ch := &d.channels[chIdx]
	chunkInChan := rowChunk >> d.chanShift
	var bIdx int
	var row uint64
	if d.bankMask >= 0 {
		bIdx = int(chunkInChan) & d.bankMask
		row = chunkInChan >> d.bankShift
	} else {
		bIdx = int(chunkInChan) % len(ch.banks)
		row = chunkInChan / uint64(len(ch.banks))
	}
	b := &ch.banks[bIdx]

	start := arrival
	if b.nextCAS > start {
		start = b.nextCAS
	}
	if b.hasRow && b.openRow == row {
		b.rowHits++
		d.Stats.RowHits++
	} else {
		// Precharge + activate before the column access can issue.
		start += d.tRP + d.tRCD
		b.openRow = row
		b.hasRow = true
	}
	b.accesses++

	dataStart := start + d.tCAS
	if ch.busFreeAt > dataStart {
		dataStart = ch.busFreeAt
	}
	finish := dataStart + d.burst
	// Column accesses to an open row pipeline at burst rate.
	b.nextCAS = start + d.burst
	ch.busFreeAt = finish
	d.Stats.BusBusyCycles += d.burst
	return finish
}

// BusUtilization estimates data-bus utilization over [since, now): the
// fraction of cycles the (aggregate) bus was transferring data. DSPatch's
// bandwidth-aware pattern selection consumes this.
func (d *DRAM) BusUtilization(since, now float64) float64 {
	if now <= since {
		return 0
	}
	total := (now - since) * float64(len(d.channels))
	u := d.Stats.BusBusyCycles / total
	if u > 1 {
		u = 1
	}
	return u
}

// Pressure reports instantaneous queuing pressure at cycle now: the mean
// number of cycles until channels go idle, normalized by the burst time.
func (d *DRAM) Pressure(now float64) float64 {
	var wait float64
	for i := range d.channels {
		if d.channels[i].busFreeAt > now {
			wait += d.channels[i].busFreeAt - now
		}
	}
	return wait / (float64(len(d.channels)) * d.burst)
}

// ResetStats clears counters at the warm-up boundary.
func (d *DRAM) ResetStats() { d.Stats = Stats{} }

func trailingBits(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
