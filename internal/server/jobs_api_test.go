package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
)

// newJobsTestServer wires engine + jobs manager + server the way
// cmd/gazeserve does, with single-worker determinism for cancellation
// tests. Durability is exercised at the jobs-package level; HTTP tests
// stay in-memory.
func newJobsTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: Compiler(eng), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck
	})
	return ts
}

func submitJob(t *testing.T, ts *httptest.Server, req JobSubmitRequest) (JobStatus, *http.Response) {
	t.Helper()
	var st JobStatus
	r := postJSON(t, ts.URL+"/jobs", req, nil)
	if r.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, r
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	r, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", id, r.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitJobState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, ts, id)
		switch st.State {
		case want:
			return st
		case string(jobs.Succeeded), string(jobs.Failed), string(jobs.Canceled), string(jobs.Interrupted):
			t.Fatalf("job %s landed in %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// mustRaw marshals a request body for the raw "request" field.
func mustRaw(t *testing.T, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJobsEndToEndSensitivitySweep is the acceptance path: a
// multi-prefetcher sensitivity sweep submitted as a background job,
// progress observed as a monotonic NDJSON stream, and the final document
// identical — same rows, same content addresses — to the synchronous
// /sweep answer for the same request.
func TestJobsEndToEndSensitivitySweep(t *testing.T) {
	ts := newJobsTestServer(t)
	// Budget overrides stretch each simulation so the events stream —
	// opened a round trip after the submit — reliably sees progress
	// events before the job completes.
	sweep := SweepRequest{
		Traces:      []string{"lbm-1274"},
		Prefetchers: []string{"IP-stride", "PMP", "Gaze"},
		Overrides:   &engine.Overrides{WarmupInstructions: 20_000, SimInstructions: 100_000},
		Axis:        &SweepAxis{Param: "dram_mtps", Values: []float64{800, 3200}},
	}

	st, r := submitJob(t, ts, JobSubmitRequest{Type: "sweep", Request: mustRaw(t, sweep)})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", r.StatusCode)
	}
	if st.ID == "" || st.Coalesced {
		t.Fatalf("submit = %+v", st)
	}

	// Stream events until the terminal snapshot: progress must be
	// monotonic and the job must succeed.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	var (
		events   []JobStatus
		lastDone = -1
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev JobStatus
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %d after %d", ev.Progress.Done, lastDone)
		}
		lastDone = ev.Progress.Done
		events = append(events, ev)
	}
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	final := events[len(events)-1]
	if final.State != string(jobs.Succeeded) {
		t.Fatalf("final event state = %s (error %q)", final.State, final.Error)
	}
	if final.Progress.Done != final.Progress.Total || final.Progress.Total == 0 {
		t.Fatalf("final progress = %d/%d", final.Progress.Done, final.Progress.Total)
	}

	// The job's document equals the synchronous answer for the same
	// request — rows, sensitivity curve and per-row content addresses.
	var jobResult SweepResponse
	r2, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", r2.StatusCode)
	}
	if err := json.NewDecoder(r2.Body).Decode(&jobResult); err != nil {
		t.Fatal(err)
	}
	var syncResult SweepResponse
	postJSON(t, ts.URL+"/sweep", sweep, &syncResult)
	if !reflect.DeepEqual(jobResult, syncResult) {
		t.Errorf("job result differs from synchronous sweep:\njob:  %+v\nsync: %+v", jobResult, syncResult)
	}
	for i, row := range jobResult.Rows {
		if row.Address == "" || row.Address != syncResult.Rows[i].Address {
			t.Errorf("row %d address %q vs sync %q", i, row.Address, syncResult.Rows[i].Address)
		}
	}

	// Resubmitting the same sweep coalesces onto the succeeded job.
	again, _ := submitJob(t, ts, JobSubmitRequest{Type: "sweep", Request: mustRaw(t, sweep)})
	if !again.Coalesced || again.ID != st.ID {
		t.Errorf("resubmit = %+v, want coalesced onto %s", again, st.ID)
	}
}

// TestJobsCancelMidFlight: the second acceptance path — cancel a running
// sweep and observe the engine stop at a shard boundary, the job landing
// in canceled with partial progress. Budget overrides slow each
// simulation to tens of milliseconds so the cancel deterministically
// lands mid-flight, and the DELETE is triggered by the events stream's
// first real completion.
func TestJobsCancelMidFlight(t *testing.T) {
	ts := newJobsTestServer(t)
	sweep := SweepRequest{
		Traces:      []string{"bwaves_s-2609"},
		Prefetchers: []string{"IP-stride", "PMP", "Gaze"},
		Overrides:   &engine.Overrides{WarmupInstructions: 20_000, SimInstructions: 100_000},
		Axis: &SweepAxis{Param: "pq_capacity", Values: []float64{
			8, 12, 16, 24, 32, 48, 64, 96,
		}},
	}
	st, r := submitJob(t, ts, JobSubmitRequest{Type: "sweep", Request: mustRaw(t, sweep)})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", r.StatusCode)
	}

	// Follow the events stream and hang up the job at its first real
	// completion — one engine job done, dozens still to go.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev JobStatus
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if jobs.State(ev.State).Terminal() {
			t.Fatalf("job reached %s before the cancel fired", ev.State)
		}
		if ev.State == string(jobs.Running) && ev.Progress.Done >= 1 {
			break
		}
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d", dr.StatusCode)
	}

	final := waitJobState(t, ts, st.ID, string(jobs.Canceled))
	if final.Progress.Done == 0 || final.Progress.Done >= final.Progress.Total {
		t.Errorf("cancel was not mid-flight: %d/%d", final.Progress.Done, final.Progress.Total)
	}
	if final.Finished == nil {
		t.Error("canceled job has no finish time")
	}

	// The result is gone with the job: 409 names the state.
	rr, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job = %d, want 409", rr.StatusCode)
	}
	// Cancelling again conflicts too.
	dr2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	dr2.Body.Close()
	if dr2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE = %d, want 409", dr2.StatusCode)
	}
}

func TestJobsListAndValidation(t *testing.T) {
	ts := newJobsTestServer(t)

	// Empty list is [], never null.
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if string(raw["jobs"]) != "[]" {
		t.Errorf(`empty list = %s, want []`, raw["jobs"])
	}

	for name, body := range map[string]JobSubmitRequest{
		"unknown type": {Type: "nope", Request: mustRaw(t, SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"})},
		"no request":   {Type: "sweep"},
		"bad priority": {Type: "simulate", Priority: "urgent", Request: mustRaw(t, SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"})},
		"invalid sweep": {Type: "sweep", Request: mustRaw(t, SweepRequest{
			Traces: []string{"no-such-trace"}, Prefetchers: []string{"Gaze"}})},
		"unknown field": {Type: "simulate", Request: json.RawMessage(`{"trace":"lbm-1274","prefetcher":"Gaze","coers":2}`)},
	} {
		_, r := submitJob(t, ts, body)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, r.StatusCode)
		}
	}

	// Unknown IDs 404 across the sub-resources.
	for _, path := range []string{"/jobs/xyz", "/jobs/xyz/result", "/jobs/xyz/events"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}

	// A simulate job runs too, and lists afterwards.
	st, r2 := submitJob(t, ts, JobSubmitRequest{
		Type:    "simulate",
		Request: mustRaw(t, SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}),
	})
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("simulate job status = %d", r2.StatusCode)
	}
	waitJobState(t, ts, st.ID, string(jobs.Succeeded))
	var sim SimulateResponse
	rr, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if err := json.NewDecoder(rr.Body).Decode(&sim); err != nil {
		t.Fatal(err)
	}
	if sim.Speedup <= 1 || sim.Address == "" {
		t.Errorf("simulate job result = %+v", sim)
	}

	var list JobListResponse
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Errorf("list = %+v", list.Jobs)
	}
}

// TestJobsListFilterAndPagination: ?state= narrows the listing, ?limit=
// pages it with a stable ?after= cursor, and the two compose.
func TestJobsListFilterAndPagination(t *testing.T) {
	ts := newJobsTestServer(t)
	traces := []string{"lbm-1274", "bwaves-1963", "bwaves-677", "bwaves_s-2609"}
	ids := make([]string, len(traces))
	for i, tr := range traces {
		st, r := submitJob(t, ts, JobSubmitRequest{
			Type:    "simulate",
			Request: mustRaw(t, SimulateRequest{Trace: tr, Prefetcher: "Gaze"}),
		})
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status = %d", tr, r.StatusCode)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		waitJobState(t, ts, id, string(jobs.Succeeded))
	}

	list := func(query string) JobListResponse {
		t.Helper()
		r, err := http.Get(ts.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s = %d", query, r.StatusCode)
		}
		var resp JobListResponse
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if got := list("?state=succeeded"); len(got.Jobs) != len(ids) {
		t.Errorf("state=succeeded listed %d jobs, want %d", len(got.Jobs), len(ids))
	}
	if got := list("?state=failed"); len(got.Jobs) != 0 {
		t.Errorf("state=failed listed %d jobs, want 0", len(got.Jobs))
	}

	// Page through with limit 3: the cursor is the last returned ID, the
	// final page has no next_after, and the walk reproduces submission
	// order exactly.
	page1 := list("?limit=3")
	if len(page1.Jobs) != 3 || page1.NextAfter != page1.Jobs[2].ID {
		t.Fatalf("page 1 = %d jobs, next_after %q", len(page1.Jobs), page1.NextAfter)
	}
	page2 := list("?limit=3&after=" + page1.NextAfter)
	if len(page2.Jobs) != 1 || page2.NextAfter != "" {
		t.Fatalf("page 2 = %d jobs, next_after %q (want the final page)", len(page2.Jobs), page2.NextAfter)
	}
	var walked []string
	for _, j := range append(page1.Jobs, page2.Jobs...) {
		walked = append(walked, j.ID)
	}
	if !reflect.DeepEqual(walked, ids) {
		t.Errorf("paged walk = %v, want submission order %v", walked, ids)
	}

	// An exact-fit limit is not truncation: no cursor.
	if got := list("?limit=4"); got.NextAfter != "" {
		t.Errorf("exact-fit limit returned next_after %q", got.NextAfter)
	}

	// Filter and pagination compose.
	combined := list("?state=succeeded&limit=2")
	if len(combined.Jobs) != 2 || combined.NextAfter != combined.Jobs[1].ID {
		t.Errorf("filtered page = %d jobs, next_after %q", len(combined.Jobs), combined.NextAfter)
	}
}

// TestStatsJobsCounters: /stats reports the jobs subsystem next to the
// engine and trace-cache fields — null without a manager, live counters
// with one.
func TestStatsJobsCounters(t *testing.T) {
	// Without a manager the field is null, like store_entries.
	plain := newTestServer(t)
	r, err := http.Get(plain.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if got, ok := raw["jobs"]; !ok || string(got) != "null" {
		t.Errorf("no manager: jobs = %s, want null", got)
	}

	// One job succeeds; a second is submitted behind it (single job
	// worker, so it queues) and is canceled while still queued — a
	// deterministic canceled count with no mid-flight timing.
	ts := newJobsTestServer(t)
	blocker, _ := submitJob(t, ts, JobSubmitRequest{
		Type:    "simulate",
		Request: mustRaw(t, SimulateRequest{Trace: "lbm-1274", Prefetcher: "IP-stride"}),
	})
	canceled, _ := submitJob(t, ts, JobSubmitRequest{
		Type: "sweep",
		Request: mustRaw(t, SweepRequest{
			Traces: []string{"lbm-1274"}, Prefetchers: []string{"PMP"},
			Overrides: &engine.Overrides{WarmupInstructions: 20_000, SimInstructions: 100_000},
			Axis:      &SweepAxis{Param: "pq_capacity", Values: []float64{8, 16, 32, 64}},
		}),
	})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+canceled.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	waitJobState(t, ts, blocker.ID, string(jobs.Succeeded))
	deadline := time.Now().Add(60 * time.Second)
	for {
		if js := getJob(t, ts, canceled.ID); js.State == string(jobs.Canceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(time.Millisecond)
	}

	var stats StatsResponse
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs == nil {
		t.Fatal("stats.jobs missing with a manager attached")
	}
	if stats.Jobs.Succeeded != 1 || stats.Jobs.Canceled != 1 {
		t.Errorf("jobs counters = %+v, want 1 succeeded / 1 canceled", stats.Jobs)
	}
	// The existing cache fields still ride alongside.
	if stats.Counters.Simulated == 0 || stats.TraceCacheEntries == 0 {
		t.Errorf("engine fields missing: %+v", stats)
	}
}

// TestJobsDisabled: without an attached manager the routes answer 503,
// not 404 — the subsystem exists, this deployment just has it off.
func TestJobsDisabled(t *testing.T) {
	ts := newTestServer(t)
	_, r := submitJob(t, ts, JobSubmitRequest{
		Type:    "simulate",
		Request: mustRaw(t, SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}),
	})
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit without manager = %d, want 503", r.StatusCode)
	}
	g, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("list without manager = %d, want 503", g.StatusCode)
	}
}

// TestSimulateClientDisconnectAbortsWork: the synchronous endpoints honor
// the request context — a dropped connection stops shard work at the next
// job boundary instead of simulating for nobody.
func TestSimulateClientDisconnectAbortsWork(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)

	// A sweep big enough to still be running when the client walks away.
	body := mustRaw(t, SweepRequest{
		Traces:      []string{"lbm-1274"},
		Prefetchers: []string{"IP-stride", "PMP", "Gaze"},
		Axis:        &SweepAxis{Param: "pq_capacity", Values: []float64{8, 12, 16, 24, 32, 48, 64, 96}},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the sweep a moment to start, then hang up.
	deadline := time.Now().Add(30 * time.Second)
	for eng.Counters().Simulated == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("request unexpectedly completed")
	}

	// The engine must stop near where it was hung up on, not run the full
	// grid. Poll briefly: the abort lands at the next shard boundary.
	// (25 distinct simulations: 8 values x 3 prefetchers + 1 folded
	// baseline.)
	const grid = 25
	time.Sleep(50 * time.Millisecond)
	settled := eng.Counters().Simulated
	if settled >= grid {
		t.Fatalf("disconnect did not abort: %d/%d simulated", settled, grid)
	}
	time.Sleep(100 * time.Millisecond)
	if again := eng.Counters().Simulated; again > settled+1 {
		t.Errorf("work kept flowing after disconnect: %d -> %d", settled, again)
	}
}
