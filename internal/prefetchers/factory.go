package prefetchers

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/prefetch"
)

// New constructs a prefetcher by its report name — the spelling used by
// `gazesim -prefetcher`, the gazeserve API, and the harness job specs.
// Fresh state is returned on every call: prefetchers are stateful and
// must not be shared between simulations.
//
// Baselines (the paper's §IV comparison set):
//
//	none       No prefetching ("" is accepted too); the speedup baseline.
//	IP-stride  Classic per-PC stride detector with confidence counters.
//	BOP        Best-Offset Prefetching (Michaud): scores a fixed offset
//	           list by recent-request hits, issues the winner.
//	SPP-PPF    Signature Path Prefetcher with the Perceptron Prefetch
//	           Filter gating its lookahead proposals.
//	IPCP-L1    Instruction Pointer Classifier-based Prefetching: per-IP
//	           class (constant stride / complex stride / next-line) at L1.
//	vBerti     Berti variant: per-IP best local delta, learned from
//	           timely fills (the paper's strongest fine-grained baseline).
//	SMS        Spatial Memory Streaming: PC+offset-indexed region
//	           footprint bit-vectors replayed on region re-entry.
//	Bingo      Footprints indexed by long events (PC+address) with
//	           fallback to shorter ones at prediction time.
//	DSPatch    Dual bit-vector spatial patterns (coverage- and
//	           accuracy-biased) selected by DRAM-bandwidth headroom.
//	PMP        Page-level Metadata Prefetching: offset-pattern merging
//	           with degree modulation (the coarse-grained contrast case).
//
// Gaze and its ablations (§III / Figs 9, 10, 17, 18):
//
//	Gaze         The paper's proposal at default geometry (2-access
//	             characterization + streaming module + prefetch buffer).
//	Gaze-PHT     Gaze's PHT path only (no streaming module).
//	Offset       Trigger-offset-indexed PHT only (the Fig 9 strawman).
//	PHT4SS       Streaming patterns served by the PHT path (Fig 10).
//	SM4SS        Streaming module handling streams alone (Fig 10).
//	Gaze-<n>acc  n ∈ 1..4: match-length sensitivity (Fig 4).
//	Gaze-PHT<n>  PHT resized to n entries (Fig 17b), e.g. Gaze-PHT256.
//	vGaze-<n>KB  Gaze over n-kilobyte regions (Fig 18 huge-page mode),
//	             e.g. vGaze-8KB; vGaze-<n>B for arbitrary byte sizes.
func New(name string) (prefetch.Prefetcher, error) {
	switch name {
	case "none", "":
		return prefetch.Nil{}, nil
	case "IP-stride":
		return NewIPStride(0), nil
	case "BOP":
		return NewBOP(), nil
	case "SPP-PPF":
		return NewSPPPPF(), nil
	case "IPCP-L1", "IPCP":
		return NewIPCP(), nil
	case "vBerti", "Berti":
		return NewBerti(), nil
	case "SMS":
		return NewSMS(DefaultSMSConfig()), nil
	case "Bingo":
		return NewBingo(DefaultBingoConfig()), nil
	case "DSPatch":
		return NewDSPatch(), nil
	case "PMP":
		return NewPMP(), nil
	case "Gaze":
		return core.NewDefault(), nil
	case "Gaze-PHT":
		return core.NewGazePHT(), nil
	case "Offset":
		return core.NewOffsetOnly(), nil
	case "PHT4SS":
		return core.NewPHT4SS(), nil
	case "SM4SS":
		return core.NewSM4SS(), nil
	case "Gaze-1acc":
		return core.NewGazeN(1), nil
	case "Gaze-2acc":
		return core.NewGazeN(2), nil
	case "Gaze-3acc":
		return core.NewGazeN(3), nil
	case "Gaze-4acc":
		return core.NewGazeN(4), nil
	}
	// Strict parsing (no Sscanf: it ignores trailing junk, and every
	// distinct accepted spelling becomes a distinct cache key, so
	// "Gaze-PHT256a", "Gaze-PHT256b", ... would each re-simulate and
	// persist the identical configuration).
	if rest, ok := strings.CutPrefix(name, "vGaze-"); ok {
		if num, ok := strings.CutSuffix(rest, "KB"); ok {
			kb, ok := parseParam(num)
			if !ok {
				return nil, fmt.Errorf("prefetchers: unknown prefetcher %q", name)
			}
			// Bound before multiplying: a huge kb would overflow kb*1024
			// right past the limit check.
			if kb > maxRegionBytes/1024 {
				return nil, fmt.Errorf("prefetchers: %s exceeds the %dKB region limit", name, maxRegionBytes/1024)
			}
			return newVGaze(name, kb*1024)
		}
		if num, ok := strings.CutSuffix(rest, "B"); ok {
			bytes, ok := parseParam(num)
			if !ok {
				return nil, fmt.Errorf("prefetchers: unknown prefetcher %q", name)
			}
			return newVGaze(name, bytes)
		}
	}
	if num, ok := strings.CutPrefix(name, "Gaze-PHT"); ok {
		entries, ok := parseParam(num)
		if !ok {
			return nil, fmt.Errorf("prefetchers: unknown prefetcher %q", name)
		}
		return newGazePHT(name, entries)
	}
	return nil, fmt.Errorf("prefetchers: unknown prefetcher %q", name)
}

// parseParam parses a positive integer in canonical form only: "08" and
// "+8" would otherwise mint cache keys distinct from "8" for identical
// configurations.
func parseParam(s string) (int, bool) {
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 || strconv.Itoa(v) != s {
		return 0, false
	}
	return v, true
}

// Parametric names accept arbitrary positive integers, and gazeserve
// validates untrusted request input by constructing prefetchers — so the
// parameters must be fully checked, with errors rather than panics,
// before any table is allocated. The magnitude caps sit well above the
// paper's sweeps (1024 PHT entries, 64KB regions) but low enough that no
// name can demand a pathological allocation; the structural constraints
// (power-of-two regions, way-divisible PHT sizes) are core.Config's own
// Validate rules, checked here on a throwaway config so core.New's panic
// path is never reached on user input.
const (
	maxRegionBytes = 2 << 20 // a 2MB huge page
	maxPHTEntries  = 1 << 16
)

func newVGaze(name string, regionBytes int) (prefetch.Prefetcher, error) {
	if regionBytes > maxRegionBytes {
		return nil, fmt.Errorf("prefetchers: %s exceeds the %dKB region limit", name, maxRegionBytes/1024)
	}
	cfg := core.DefaultConfig()
	cfg.RegionSize = regionBytes
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("prefetchers: %s: %w", name, err)
	}
	return core.NewVGaze(regionBytes), nil
}

func newGazePHT(name string, entries int) (prefetch.Prefetcher, error) {
	if entries > maxPHTEntries {
		return nil, fmt.Errorf("prefetchers: %s exceeds the %d-entry PHT limit", name, maxPHTEntries)
	}
	cfg := core.DefaultConfig()
	cfg.PHTEntries = entries
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("prefetchers: %s: %w", name, err)
	}
	return core.NewWithPHTEntries(entries), nil
}

// MustNew is New for known-good names.
func MustNew(name string) prefetch.Prefetcher {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// EvaluatedNames lists the nine prefetchers of the paper's main
// single-core comparison (Fig 6-8), in the figures' display order.
func EvaluatedNames() []string {
	return []string{
		"IP-stride", "SPP-PPF", "IPCP-L1", "vBerti",
		"SMS", "Bingo", "DSPatch", "PMP", "Gaze",
	}
}

// StorageBytes returns a prefetcher's metadata budget when it exposes one
// (the Table IV column); ok is false otherwise.
func StorageBytes(p prefetch.Prefetcher) (float64, bool) {
	type sizer interface{ StorageBytes() float64 }
	if s, ok := p.(sizer); ok {
		return s.StorageBytes(), true
	}
	if g, ok := p.(*core.Gaze); ok {
		return g.TotalStorageBytes(), true
	}
	return 0, false
}
