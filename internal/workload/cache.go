package workload

import (
	"sync"

	"repro/internal/trace"
)

// This file implements the process-wide materialized-trace cache. Every
// entry point that simulates — the engine's sweep shards, gazeserve
// handlers, benchmarks — asks for traces through Materialize, so N
// prefetchers x M config points over one trace generate it exactly once
// per process instead of once per job. Entries are immutable [] Record
// slabs keyed by {name, length}; population is single-flight, so
// concurrent shards requesting the same trace block on one generation
// instead of racing duplicates.

// CacheStats is a point-in-time snapshot of the materialized-trace cache.
type CacheStats struct {
	// Entries is the number of materialized traces resident in memory.
	Entries int `json:"entries"`
	// Hits counts Materialize calls served an existing (or in-flight)
	// slab; Misses counts calls that generated one.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Bytes is the resident record-slab footprint (records x record size).
	Bytes int64 `json:"bytes"`
}

type traceKey struct {
	name string
	n    int
}

// traceEntry is one cache slot. ready is closed once recs/err are final;
// readers that find an in-flight entry block on it — the single-flight
// discipline that keeps shards from generating duplicates.
type traceEntry struct {
	ready chan struct{}
	recs  []trace.Record
	err   error
}

var traceCache = struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	hits    uint64
	misses  uint64
	bytes   int64
}{entries: make(map[traceKey]*traceEntry)}

// Materialize returns the first n records of the named workload from the
// process-wide cache, generating them on first request. The returned
// slice is shared and immutable: callers must not modify it (wrap it in
// trace.NewSliceReader / trace.NewLooping to consume it). It is safe for
// concurrent use from any number of goroutines.
func Materialize(name string, n int) ([]trace.Record, error) {
	key := traceKey{name: name, n: n}
	traceCache.mu.Lock()
	if e, ok := traceCache.entries[key]; ok {
		traceCache.hits++
		traceCache.mu.Unlock()
		<-e.ready
		return e.recs, e.err
	}
	e := &traceEntry{ready: make(chan struct{})}
	traceCache.entries[key] = e
	traceCache.misses++
	traceCache.mu.Unlock()

	e.recs, e.err = Generate(name, n)

	traceCache.mu.Lock()
	if cur, ok := traceCache.entries[key]; ok && cur == e {
		// The identity check keeps a ResetTraceCache racing an in-flight
		// generation from corrupting the byte accounting of the new map.
		if e.err != nil {
			// Don't cache failures (unknown names): drop the slot so the
			// map and Entries only ever hold materialized traces.
			delete(traceCache.entries, key)
		} else {
			traceCache.bytes += int64(len(e.recs)) * trace.RecordBytes
		}
	}
	traceCache.mu.Unlock()
	close(e.ready)
	return e.recs, e.err
}

// MustMaterialize is Materialize for known-good names; it panics on error.
func MustMaterialize(name string, n int) []trace.Record {
	recs, err := Materialize(name, n)
	if err != nil {
		panic(err)
	}
	return recs
}

// TraceCacheStats returns a snapshot of the cache counters.
func TraceCacheStats() CacheStats {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	return CacheStats{
		Entries: len(traceCache.entries),
		Hits:    traceCache.hits,
		Misses:  traceCache.misses,
		Bytes:   traceCache.bytes,
	}
}

// ResetTraceCache discards every materialized trace and zeroes the
// counters. It is for tests and benchmarks that need a cold cache or a
// clean counter baseline; callers must ensure no Materialize call is in
// flight (in-flight generations complete against the old entries and are
// simply not retained).
func ResetTraceCache() {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.entries = make(map[traceKey]*traceEntry)
	traceCache.hits, traceCache.misses, traceCache.bytes = 0, 0, 0
}
