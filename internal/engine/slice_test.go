package engine

import (
	"testing"

	"repro/internal/trace"
)

// planRecords builds a deterministic slab with varied per-record
// instruction counts, so slice boundaries land mid-pattern rather than on
// convenient uniform strides.
func planRecords(n int) trace.RecSlice {
	recs := make(trace.RecSlice, n)
	for i := range recs {
		recs[i] = trace.Record{
			PC:     uint64(0x400000 + 4*i),
			Addr:   uint64(0x10000 + 64*i),
			NonMem: uint16(i % 7),
			Kind:   trace.Load,
		}
	}
	return recs
}

// cumInstr is the reference prefix-sum the plan invariants are checked
// against: instructions executed by the first v records of the looped
// stream over slab.
func cumInstr(slab trace.Records, v uint64) uint64 {
	n := uint64(slab.Len())
	var total uint64
	for i := 0; i < slab.Len(); i++ {
		total += uint64(slab.At(i).Instructions())
	}
	var rem uint64
	for i := uint64(0); i < v%n; i++ {
		rem += uint64(slab.At(int(i)).Instructions())
	}
	return v/n*total + rem
}

// TestPlanSlicesInvariants checks, across slab sizes, budgets, and shard
// counts (including budgets that loop the trace several times), that a
// plan covers exactly the serial run's measurement window: per-slice sim
// budgets are positive and sum to the serial measured-instruction count,
// and each slice's warmup replay ends exactly where its measurement
// window begins.
func TestPlanSlicesInvariants(t *testing.T) {
	cases := []struct {
		n      int
		warmup uint64
		sim    uint64
		k      int
	}{
		{n: 100, warmup: 50, sim: 200, k: 4},
		{n: 100, warmup: 0, sim: 200, k: 4},
		{n: 37, warmup: 500, sim: 1000, k: 7}, // budgets loop the slab many times
		{n: 1000, warmup: 100, sim: 3000, k: 2},
		{n: 1000, warmup: 100, sim: 3000, k: 64},
		{n: 5, warmup: 3, sim: 7, k: 64}, // k clamps to the measured record count
	}
	for _, c := range cases {
		slab := planRecords(c.n)
		wins := planSlices(slab, c.warmup, c.sim, c.k)
		if len(wins) == 0 {
			t.Fatalf("n=%d w=%d s=%d k=%d: empty plan", c.n, c.warmup, c.sim, c.k)
		}
		if len(wins) > c.k {
			t.Errorf("n=%d k=%d: plan has %d slices, more than requested", c.n, c.k, len(wins))
		}

		// Reference serial window, computed independently of the planner.
		measStartV := uint64(0)
		for cumInstr(slab, measStartV) < c.warmup {
			measStartV++
		}
		measEndV := measStartV
		startInstr := cumInstr(slab, measStartV)
		for cumInstr(slab, measEndV) < startInstr+c.sim {
			measEndV++
		}
		serialMeasured := cumInstr(slab, measEndV) - startInstr
		if c.k > int(measEndV-measStartV) && len(wins) != int(measEndV-measStartV) {
			t.Errorf("n=%d k=%d: want clamp to %d measured records, got %d slices",
				c.n, c.k, measEndV-measStartV, len(wins))
		}

		var sum uint64
		cursor := measStartV // virtual index where the next slice must begin measuring
		for i, w := range wins {
			if w.sim == 0 {
				t.Errorf("n=%d k=%d slice %d: zero sim budget", c.n, c.k, i)
			}
			sum += w.sim
			// The slice's reader starts at slab record w.start; after
			// exactly w.warmup instructions it must sit on virtual record
			// `cursor` of the serial stream. Walk the replay forward.
			var replayed uint64
			steps := uint64(0)
			for replayed < w.warmup {
				replayed += uint64(slab.At((w.start + int(steps)) % c.n).Instructions())
				steps++
			}
			if replayed != w.warmup {
				t.Errorf("n=%d k=%d slice %d: warmup budget %d does not land on a record boundary (overshoot to %d)",
					c.n, c.k, i, w.warmup, replayed)
			}
			if got := (w.start + int(steps)) % c.n; got != int(cursor%uint64(c.n)) {
				t.Errorf("n=%d k=%d slice %d: measurement begins at slab record %d, want %d",
					c.n, c.k, i, got, cursor%uint64(c.n))
			}
			// Advance the cursor past this slice's measured records.
			var measured uint64
			for measured < w.sim {
				measured += uint64(slab.At(int(cursor % uint64(c.n))).Instructions())
				cursor++
			}
			if measured != w.sim {
				t.Errorf("n=%d k=%d slice %d: sim budget %d not a whole-record sum (overshoot to %d)",
					c.n, c.k, i, w.sim, measured)
			}
		}
		if sum != serialMeasured {
			t.Errorf("n=%d w=%d s=%d k=%d: slice budgets sum to %d, serial run measures %d",
				c.n, c.warmup, c.sim, c.k, sum, serialMeasured)
		}
		if cursor != measEndV {
			t.Errorf("n=%d k=%d: slices cover through virtual record %d, serial window ends at %d",
				c.n, c.k, cursor, measEndV)
		}
	}
}

// TestPlanSlicesZeroWarmupBoundary pins the warmup-prefix floor: with a
// zero warmup budget the first slice starts at record 0 with no prefix at
// all, exactly like the serial run's cold start.
func TestPlanSlicesZeroWarmupBoundary(t *testing.T) {
	slab := planRecords(200)
	wins := planSlices(slab, 0, 500, 4)
	if len(wins) != 4 {
		t.Fatalf("got %d slices, want 4", len(wins))
	}
	if wins[0].start != 0 || wins[0].warmup != 0 {
		t.Errorf("first slice = {start %d, warmup %d}, want cold start at record 0",
			wins[0].start, wins[0].warmup)
	}
	for i, w := range wins[1:] {
		if w.warmup != 0 {
			t.Errorf("slice %d has warmup %d under a zero warmup budget", i+1, w.warmup)
		}
	}
}

// TestPlanSlicesWarmupPrefix: interior slices of a warmed job replay at
// least the configured warmup before measuring, and a slice whose window
// begins inside the first warmup's worth of the stream floors its prefix
// at record 0.
func TestPlanSlicesWarmupPrefix(t *testing.T) {
	slab := planRecords(300)
	const warmup = 400
	wins := planSlices(slab, warmup, 800, 4)
	if len(wins) != 4 {
		t.Fatalf("got %d slices, want 4", len(wins))
	}
	for i, w := range wins[1:] {
		if w.warmup < warmup {
			t.Errorf("interior slice %d warms for %d instructions, want >= %d", i+1, w.warmup, warmup)
		}
	}
	// Slice 0 measures from the serial window's start. Its prefix is also
	// bounded: the planner walks back only to the record boundary at or
	// before warmup instructions, not all the way to record 0.
	if wins[0].warmup < warmup {
		t.Errorf("slice 0 warms for %d, want >= %d", wins[0].warmup, warmup)
	}
	// ... and it overshoots the budget by less than one record (the
	// largest record in planRecords is 7 instructions).
	if wins[0].warmup >= warmup+7 {
		t.Errorf("slice 0 warmup %d overshoots the %d budget by a record or more", wins[0].warmup, warmup)
	}
}

// TestPlanSlicesEmpty: degenerate inputs plan to nothing rather than
// dividing by zero.
func TestPlanSlicesEmpty(t *testing.T) {
	if wins := planSlices(trace.RecSlice{}, 10, 10, 4); wins != nil {
		t.Errorf("empty slab planned %d slices", len(wins))
	}
	if wins := planSlices(planRecords(10), 10, 0, 4); wins != nil {
		t.Errorf("zero sim budget planned %d slices", len(wins))
	}
}

// TestSlicedJobValidation: the single-core constraint and shard bounds.
func TestSlicedJobValidation(t *testing.T) {
	good := Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}, Overrides: Overrides{SliceShards: 4}}
	if err := good.Validate(); err != nil {
		t.Errorf("single-core sliced job rejected: %v", err)
	}
	multi := Job{Traces: []string{"lbm-1274", "mcf_s-1554"}, L1: []string{"Gaze"}, Overrides: Overrides{SliceShards: 4}}
	if err := multi.Validate(); err == nil {
		t.Error("multi-core sliced job accepted")
	}
	over := Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}, Overrides: Overrides{SliceShards: maxSliceShards + 1}}
	if err := over.Validate(); err == nil {
		t.Error("slice_shards over the bound accepted")
	}
}

// TestSliceShardsAddressing: slice_shards 1 is the unsliced run and must
// share its content address; any K > 1 changes the simulated numbers and
// must therefore change the address.
func TestSliceShardsAddressing(t *testing.T) {
	scale := Scale{TraceLen: 1000, Warmup: 100, Sim: 200}
	base := Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}}
	one := base
	one.Overrides.SliceShards = 1
	if got, want := one.CanonicalJSON(scale), base.CanonicalJSON(scale); got != want {
		t.Errorf("slice_shards 1 changed the canonical encoding:\n got %s\nwant %s", got, want)
	}
	four := base
	four.Overrides.SliceShards = 4
	if four.ContentAddress(scale) == base.ContentAddress(scale) {
		t.Error("slice_shards 4 shares the unsliced address")
	}
}
