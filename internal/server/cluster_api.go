// Cluster API: the coordinator side of internal/cluster's wire
// protocol, plus the readiness probe multi-node deployments gate
// traffic on. The handlers are thin: registration, heartbeats, leases
// and uploads all translate one HTTP exchange into one Coordinator
// method, with the package's sentinel errors mapped to statuses
// (unknown worker → 404 so workers re-register, incompatible handshake
// → 409, bad upload → 400).
//
//	GET    /readyz                          readiness (store reachable, jobs accepting)
//	GET    /cluster                         coordinator status document
//	POST   /cluster/workers                 register
//	DELETE /cluster/workers/{id}            deregister
//	POST   /cluster/workers/{id}/heartbeat  renew liveness + leases
//	POST   /cluster/lease                   lease pending units
//	PUT    /cluster/results/{addr}          upload a verified result document
//	PUT    /cluster/telemetry/{addr}        upload a verified telemetry timeline document
//	POST   /cluster/failures/{addr}         report a deterministic failure
package server

import (
	"errors"
	"io"
	"net/http"
	"os"

	"repro/internal/cluster"
)

// AttachCluster enables the cluster coordinator API on this server and
// routes the jobs manager's work to it (pass the same coordinator whose
// Execute was injected into jobs.Open). Without a coordinator the
// /cluster routes answer 503, mirroring the jobs routes.
func (s *Server) AttachCluster(c *cluster.Coordinator) *Server {
	s.cluster = c
	return s
}

// clusterEnabled answers 503 (and returns false) when no coordinator is
// attached.
func (s *Server) clusterEnabled(w http.ResponseWriter) bool {
	if s.cluster == nil {
		httpError(w, http.StatusServiceUnavailable, "cluster coordinator not enabled on this server (start with -coordinator)")
		return false
	}
	return true
}

// handleReadyz is the readiness probe: liveness (/healthz) says the
// process is up, readiness says it can take work — the persisted store
// is reachable and the jobs manager is still accepting submissions. A
// draining or store-broken node answers 503 and falls out of rotation
// while /healthz keeps it from being restarted.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if st := s.eng.Store(); st != nil {
		if _, err := os.Stat(st.Dir()); err != nil {
			httpError(w, http.StatusServiceUnavailable, "result store unavailable: %v", err)
			return
		}
	}
	if s.jobs != nil && !s.jobs.Accepting() {
		httpError(w, http.StatusServiceUnavailable, "jobs manager is shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Info())
}

func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	var req cluster.RegisterRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	resp, err := s.cluster.Register(req)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	if err := s.cluster.Deregister(r.PathValue("id")); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
}

func (s *Server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	var req cluster.HeartbeatRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := s.cluster.Heartbeat(r.PathValue("id"), req); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	var req cluster.LeaseRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	units, err := s.cluster.Lease(req.WorkerID, req.Max)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	if units == nil {
		units = []cluster.WorkUnit{}
	}
	writeJSON(w, http.StatusOK, cluster.LeaseResponse{Units: units})
}

// maxResultDocBytes bounds result-document uploads. Records are a few
// KB; 4MB leaves room for many-core results while keeping a hostile
// upload from ballooning memory.
const maxResultDocBytes = 4 << 20

func (s *Server) handleClusterResult(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	doc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultDocBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading result document: %v", err)
		return
	}
	settled, err := s.cluster.CompleteResult(r.PathValue("addr"), doc)
	if err != nil {
		if errors.Is(err, cluster.ErrBadResult) {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := "completed"
	if !settled {
		status = "duplicate"
	}
	writeJSON(w, http.StatusOK, cluster.UploadResponse{Status: status})
}

func (s *Server) handleClusterTelemetry(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	doc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultDocBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading telemetry document: %v", err)
		return
	}
	if err := s.cluster.CompleteTelemetry(r.PathValue("addr"), doc); err != nil {
		if errors.Is(err, cluster.ErrBadTelemetry) {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.UploadResponse{Status: "adopted"})
}

func (s *Server) handleClusterFail(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	var req cluster.FailRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	status := "failed"
	if !s.cluster.FailUnit(r.PathValue("addr"), req.WorkerID, req.Error) {
		status = "ignored" // settled or unknown unit: nothing left to fail
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
