package core

import "repro/internal/prefetch"

// pbState is the per-offset state in the Prefetch Buffer: four states per
// offset as in Table I (No Prefetch, Prefetch to L1D, to L2C; LLC unused).
type pbState uint8

const (
	pbNone pbState = iota
	pbL2
	pbL1
)

// prefetchBuffer is Gaze's PB: up to N regions, each with a per-offset
// prefetch pattern. It smooths issuance (a bounded number of requests
// drain per training event) and merges aggressiveness promotions into
// still-pending patterns (Fig 3b, lower part).
type prefetchBuffer struct {
	entries []pbEntry // FIFO order: entries[0] is oldest
	cap     int
	blocks  int
}

type pbEntry struct {
	region  uint64
	states  []pbState
	pending int
}

func newPrefetchBuffer(capacity, blocks int) *prefetchBuffer {
	return &prefetchBuffer{cap: capacity, blocks: blocks}
}

func (pb *prefetchBuffer) find(region uint64) *pbEntry {
	for i := range pb.entries {
		if pb.entries[i].region == region {
			return &pb.entries[i]
		}
	}
	return nil
}

// merge records a desired prefetch state for one offset of a region,
// keeping the more aggressive of the existing and new states (promotion
// can upgrade L2 to L1, never downgrade).
func (pb *prefetchBuffer) merge(region uint64, off int, st pbState) {
	if st == pbNone || off < 0 || off >= pb.blocks {
		return
	}
	e := pb.find(region)
	if e == nil {
		if len(pb.entries) >= pb.cap {
			// FIFO eviction: the oldest entry's remaining requests are lost
			// (bounded buffering, as in hardware).
			pb.entries = pb.entries[1:]
		}
		pb.entries = append(pb.entries, pbEntry{
			region: region,
			states: make([]pbState, pb.blocks),
		})
		e = &pb.entries[len(pb.entries)-1]
	}
	if st > e.states[off] {
		if e.states[off] == pbNone {
			e.pending++
		}
		e.states[off] = st
	}
}

// drain emits up to max pending requests, oldest region first, in offset
// order, clearing what it emits.
func (pb *prefetchBuffer) drain(max int, regionShift uint, issue prefetch.IssueFunc) {
	emitted := 0
	for i := 0; i < len(pb.entries) && emitted < max; i++ {
		e := &pb.entries[i]
		for off := 0; off < pb.blocks && emitted < max; off++ {
			st := e.states[off]
			if st == pbNone {
				continue
			}
			level := prefetch.LevelL1
			if st == pbL2 {
				level = prefetch.LevelL2
			}
			issue(prefetch.Request{
				VLine: e.region<<regionShift + uint64(off)<<6,
				Level: level,
			})
			e.states[off] = pbNone
			e.pending--
			emitted++
		}
	}
	// Compact fully-drained entries from the front.
	for len(pb.entries) > 0 && pb.entries[0].pending == 0 {
		pb.entries = pb.entries[1:]
	}
}

// len returns the number of buffered regions.
func (pb *prefetchBuffer) len() int { return len(pb.entries) }
