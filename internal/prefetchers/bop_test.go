package prefetchers

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func TestBOPLearnsBestOffset(t *testing.T) {
	p := NewBOP()
	s := &sink{}
	base := uint64(0x700000)
	// Stride-4-lines stream: offset 4 must win the score race and the
	// issued requests must eventually be line+4.
	for i := uint64(0); i < 600; i++ {
		feed(p, s, 0x400, base+i*4*mem.LineSize)
	}
	if len(s.reqs) == 0 {
		t.Fatal("BOP issued nothing")
	}
	// Inspect the tail of issued requests: they must use offset 4.
	tail := s.reqs[len(s.reqs)-10:]
	last := base + 599*4*mem.LineSize
	hits := 0
	for _, r := range tail {
		delta := int64(r.VLine>>mem.LineBits) - int64(last>>mem.LineBits)
		if delta == 4 || delta == 8 { // relative to one of the last accesses
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("BOP tail requests not at the learned offset: %+v", tail)
	}
}

func TestBOPTurnsOffOnRandom(t *testing.T) {
	p := NewBOP()
	s := &sink{}
	x := uint64(999)
	// Random accesses: no offset scores, BOP must enter learn-only mode
	// after the first rounds and stop issuing.
	for i := 0; i < 2000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		feed(p, s, 0x400, 0x800000+(x%(1<<24))&^63)
	}
	early := len(s.reqs)
	s.reqs = nil
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		feed(p, s, 0x400, 0x800000+(x%(1<<24))&^63)
	}
	if len(s.reqs) > early && len(s.reqs) > 50 {
		t.Errorf("BOP kept issuing on random stream: %d requests", len(s.reqs))
	}
}

func TestBOPFactoryName(t *testing.T) {
	p := MustNew("BOP")
	if p.Name() != "BOP" {
		t.Errorf("Name = %q", p.Name())
	}
	if st, ok := StorageBytes(p); !ok || st <= 0 {
		t.Error("BOP storage accounting missing")
	}
}

func TestBOPSanityOnStream(t *testing.T) {
	// Next-line stream: offset 1 family must win; requests stay
	// line-aligned and ahead of the stream.
	p := NewBOP()
	s := &sink{}
	base := uint64(0x900000)
	for i := uint64(0); i < 400; i++ {
		p.Train(prefetch.Access{PC: 0x1, VAddr: base + i*mem.LineSize}, s.issue)
	}
	for _, r := range s.reqs {
		if r.VLine&(mem.LineSize-1) != 0 {
			t.Fatalf("unaligned request %#x", r.VLine)
		}
	}
	if len(s.reqs) < 100 {
		t.Errorf("BOP issued only %d requests on a dense stream", len(s.reqs))
	}
}
