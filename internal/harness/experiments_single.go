package harness

import (
	"fmt"
	"sort"

	"repro/internal/prefetchers"
	"repro/internal/stats"
)

// Fig01 reproduces Figure 1: speedup of context-based characterization
// schemes on CloudSuite vs SPEC17, annotated with hardware budgets. The
// scheme→implementation mapping follows §II/Fig 1: Offset (naive trigger-
// offset PHT), Offset-opt = PMP, PC-opt = DSPatch, PC+Offset = SMS,
// PC+Addr-opt = Bingo, plus Gaze.
func Fig01(r *Runner) []stats.Table {
	schemes := []struct{ label, pf string }{
		{"Offset", "Offset"},
		{"Offset-opt (PMP)", "PMP"},
		{"PC-opt (DSPatch)", "DSPatch"},
		{"PC+Offset (SMS)", "SMS"},
		{"PC+Addr-opt (Bingo)", "Bingo"},
		{"Gaze", "Gaze"},
	}
	t := stats.Table{
		Title:  "Fig 1: characterization schemes — CloudSuite vs SPEC17 speedup and storage",
		Header: []string{"scheme", "cloud speedup", "spec17 speedup", "storage"},
	}
	for _, s := range schemes {
		p := prefetchers.MustNew(s.pf)
		storage, _ := prefetchers.StorageBytes(p)
		t.AddRow(s.label,
			stats.F(r.suiteSpeedup("cloud", s.pf), 3),
			stats.F(r.suiteSpeedup("spec17", s.pf), 3),
			fmt.Sprintf("%.1fKB", storage/1024))
	}
	return []stats.Table{t}
}

// Fig04 reproduces Figure 4: effect of the number of aligned initial
// accesses (1-4) on IPC, accuracy and coverage across the evaluation set.
func Fig04(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Fig 4: number of initial accesses used for matching",
		Note:   "IPC normalized to no prefetching; streaming module disabled (characterization-only, as in the paper's study)",
		Header: []string{"accesses", "norm. IPC", "accuracy", "coverage"},
	}
	traces := r.EvalSet()
	for n := 1; n <= 4; n++ {
		pf := fmt.Sprintf("Gaze-%dacc", n)
		var sp, acc, cov []float64
		for _, tr := range traces {
			res := r.single(tr, pf)
			sp = append(sp, r.Speedup(tr, pf))
			if a := res.Accuracy(); a > 0 {
				acc = append(acc, a)
			}
			cov = append(cov, res.Coverage())
		}
		t.AddRow(fmt.Sprint(n), stats.F(stats.Geomean(sp), 3),
			stats.Pct(stats.Mean(acc)), stats.Pct(stats.Mean(cov)))
	}
	return []stats.Table{t}
}

// Fig06 reproduces Figure 6: single-core speedup of the nine evaluated
// prefetchers per suite plus the overall average.
func Fig06(r *Runner) []stats.Table {
	pfs := prefetchers.EvaluatedNames()
	r.prewarm(r.EvalSet(), pfs)
	t := stats.Table{
		Title:  "Fig 6: single-core speedup over no prefetching",
		Header: append([]string{"prefetcher"}, append(MainSuites(), "AVG")...),
	}
	for _, pf := range pfs {
		row := []string{pf}
		var all []float64
		for _, suite := range MainSuites() {
			for _, tr := range r.SuiteTraces(suite) {
				all = append(all, r.Speedup(tr, pf))
			}
			row = append(row, stats.F(r.suiteSpeedup(suite, pf), 3))
		}
		row = append(row, stats.F(stats.Geomean(all), 3))
		t.AddRow(row...)
	}
	return []stats.Table{t}
}

// Fig07 reproduces Figure 7: overall prefetch accuracy per suite.
func Fig07(r *Runner) []stats.Table {
	pfs := prefetchers.EvaluatedNames()
	t := stats.Table{
		Title:  "Fig 7: prefetch accuracy (overall accuracy metric, §IV-A3)",
		Header: append([]string{"prefetcher"}, append(MainSuites(), "AVG")...),
	}
	for _, pf := range pfs {
		row := []string{pf}
		var all []float64
		for _, suite := range MainSuites() {
			var vals []float64
			for _, tr := range r.SuiteTraces(suite) {
				res := r.single(tr, pf)
				if res.IssuedPrefetches() > 0 {
					vals = append(vals, res.Accuracy())
				}
			}
			all = append(all, vals...)
			row = append(row, stats.Pct(stats.Mean(vals)))
		}
		row = append(row, stats.Pct(stats.Mean(all)))
		t.AddRow(row...)
	}
	return []stats.Table{t}
}

// Fig08 reproduces Figure 8: LLC miss coverage and the late-prefetch
// fraction per suite.
func Fig08(r *Runner) []stats.Table {
	pfs := prefetchers.EvaluatedNames()
	cov := stats.Table{
		Title:  "Fig 8a: LLC miss coverage",
		Header: append([]string{"prefetcher"}, append(MainSuites(), "AVG")...),
	}
	late := stats.Table{
		Title:  "Fig 8b: late fraction of useful prefetches",
		Header: append([]string{"prefetcher"}, append(MainSuites(), "AVG")...),
	}
	for _, pf := range pfs {
		covRow, lateRow := []string{pf}, []string{pf}
		var covAll, lateAll []float64
		for _, suite := range MainSuites() {
			var cv, lt []float64
			for _, tr := range r.SuiteTraces(suite) {
				res := r.single(tr, pf)
				cv = append(cv, res.Coverage())
				if res.IssuedPrefetches() > 0 {
					lt = append(lt, res.LateFraction())
				}
			}
			covAll = append(covAll, cv...)
			lateAll = append(lateAll, lt...)
			covRow = append(covRow, stats.Pct(stats.Mean(cv)))
			lateRow = append(lateRow, stats.Pct(stats.Mean(lt)))
		}
		covRow = append(covRow, stats.Pct(stats.Mean(covAll)))
		lateRow = append(lateRow, stats.Pct(stats.Mean(lateAll)))
		cov.AddRow(covRow...)
		late.AddRow(lateRow...)
	}
	return []stats.Table{cov, late}
}

// Fig09 reproduces Figure 9: the Offset / Gaze-PHT / full-Gaze speedup
// spectrum across traces (sorted by full-Gaze speedup, as the paper sorts
// its x-axis by attainable gain).
func Fig09(r *Runner) []stats.Table {
	traces := r.EvalSet()
	type row struct {
		name                  string
		offset, gazePHT, full float64
	}
	rows := make([]row, 0, len(traces))
	for _, tr := range traces {
		rows = append(rows, row{
			name:    tr,
			offset:  r.Speedup(tr, "Offset"),
			gazePHT: r.Speedup(tr, "Gaze-PHT"),
			full:    r.Speedup(tr, "Gaze"),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].full < rows[j].full })
	t := stats.Table{
		Title:  "Fig 9: pattern characterization ablation (sorted by full-Gaze speedup)",
		Header: []string{"trace", "Offset", "Gaze-PHT", "Full Gaze"},
	}
	var o, g, f []float64
	for _, rw := range rows {
		o = append(o, rw.offset)
		g = append(g, rw.gazePHT)
		f = append(f, rw.full)
		t.AddRow(rw.name, stats.F(rw.offset, 3), stats.F(rw.gazePHT, 3), stats.F(rw.full, 3))
	}
	t.AddRow("AVG", stats.F(stats.Geomean(o), 3), stats.F(stats.Geomean(g), 3), stats.F(stats.Geomean(f), 3))
	return []stats.Table{t}
}

// fig10Traces are the streaming-representative workloads of Figure 10:
// per Ligra workload one init-phase and one compute-phase trace.
var fig10Traces = []string{
	"bwaves-1963", "cactusADM-1804", "leslie3d-271", "wrf-816",
	"gcc_s-1850", "wrf_s-8065", "pop2_s-17", "roms_s-523",
	"streamcluster-5", "facesim-22", "nutch-p3c1", "nutch-p4c2",
	"PageRank-1", "PageRank-61", "PageRank.D-3", "PageRank.D-52",
	"BC-4", "BC-27", "BellmanFord-4", "BellmanFord-34",
	"Components-4", "Components-24", "Components.S-4", "Components.S-21",
}

// Fig10 reproduces Figure 10: naive-PHT streaming (PHT4SS) vs the
// dedicated streaming module (SM4SS) vs full Gaze.
func Fig10(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Fig 10: streaming-module ablation (streaming-only operation)",
		Header: []string{"trace", "PHT4SS", "SM4SS", "Gaze"},
	}
	var a, b, c []float64
	for _, tr := range fig10Traces {
		s1 := r.Speedup(tr, "PHT4SS")
		s2 := r.Speedup(tr, "SM4SS")
		s3 := r.Speedup(tr, "Gaze")
		a, b, c = append(a, s1), append(b, s2), append(c, s3)
		t.AddRow(tr, stats.F(s1, 3), stats.F(s2, 3), stats.F(s3, 3))
	}
	t.AddRow("AVG", stats.F(stats.Geomean(a), 3), stats.F(stats.Geomean(b), 3), stats.F(stats.Geomean(c), 3))
	return []stats.Table{t}
}

// fig11Traces are Figure 11's representative traces.
var fig11Traces = []string{
	"milc-127", "cactusADM-1804", "leslie3d-149", "soplex-247",
	"GemsFDTD-1169", "GemsFDTD-1211", "libquantum-714", "libquantum-1343",
	"lbm-1274", "sphinx3-417", "wrf-196", "BFS.B-18", "BC-27",
	"BellmanFord-25", "BFS-17", "BFSCC-17", "CF-185", "Components-24",
	"Components.S-22", "MIS-17", "PageRank-80", "PageRank.D-24",
	"Triangle-4", "canneal-1", "facesim-2", "streamcluster-5",
	"cassandra-p0c0", "cloud9-p5c2", "nutch-p0c0", "stream-p1c0",
	"gcc_s-734", "gcc_s-2226", "bwaves_s-1740", "mcf_s-665", "mcf_s-1536",
	"cactuBSSN_s-3477", "lbm_s-2676", "omnetpp_s-141", "xalancbmk_s-10",
	"xalancbmk_s-202", "cam4_s-490", "pop2_s-17", "fotonik3d_s-8225",
	"fotonik3d_s-10881", "roms_s-294", "roms_s-523",
}

// Fig11 reproduces Figure 11: per-trace speedups of vBerti, PMP and Gaze
// plus category averages.
func Fig11(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Fig 11: representative traces — vBerti vs PMP vs Gaze",
		Header: []string{"trace", "vBerti", "PMP", "Gaze"},
	}
	pfs := []string{"vBerti", "PMP", "Gaze"}
	sums := map[string][]float64{}
	spec17 := map[string][]float64{}
	cloud := map[string][]float64{}
	for _, tr := range fig11Traces {
		row := []string{tr}
		for _, pf := range pfs {
			s := r.Speedup(tr, pf)
			row = append(row, stats.F(s, 3))
			sums[pf] = append(sums[pf], s)
			if isSpec17Trace(tr) {
				spec17[pf] = append(spec17[pf], s)
			}
			if isCloudTrace(tr) {
				cloud[pf] = append(cloud[pf], s)
			}
		}
		t.AddRow(row...)
	}
	for label, m := range map[string]map[string][]float64{
		"avg_spec17": spec17, "avg_cloud": cloud, "avg_all": sums,
	} {
		row := []string{label}
		for _, pf := range pfs {
			row = append(row, stats.F(stats.Geomean(m[pf]), 3))
		}
		t.AddRow(row...)
	}
	// Keep average rows in a stable order (map iteration above is not).
	sort.Slice(t.Rows[len(t.Rows)-3:], func(i, j int) bool {
		tail := t.Rows[len(t.Rows)-3:]
		return tail[i][0] < tail[j][0]
	})
	return []stats.Table{t}
}

func isSpec17Trace(name string) bool {
	for _, suffix := range []string{"_s-"} {
		if contains(name, suffix) {
			return true
		}
	}
	return false
}

func isCloudTrace(name string) bool {
	for _, app := range []string{"cassandra", "cloud9", "nutch", "stream-", "classification"} {
		if contains(name, app) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Table5 reproduces Table V: the qualitative comparison grid, derived from
// measured behaviour (storage budget, streaming-subset speedup, cloud-
// subset speedup).
func Table5(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Table V: prefetcher comparison (✔ = strong, ✘ = weak; derived from measurements)",
		Header: []string{"prefetcher", "hardware cost", "simple pattern (streaming)", "complex pattern (cloud)"},
	}
	streamingSubset := []string{"lbm-1274", "bwaves_s-2609", "leslie3d-134", "roms_s-523"}
	mark := func(ok bool) string {
		if ok {
			return "✔"
		}
		return "✘"
	}
	for _, pf := range []string{"Gaze", "vBerti", "PMP", "Bingo"} {
		p := prefetchers.MustNew(pf)
		storage, _ := prefetchers.StorageBytes(p)
		var strm []float64
		for _, tr := range streamingSubset {
			strm = append(strm, r.Speedup(tr, pf))
		}
		cloudSp := r.suiteSpeedup("cloud", pf)
		t.AddRow(pf,
			mark(storage < 10*1024)+fmt.Sprintf(" (%.1fKB)", storage/1024),
			mark(stats.Geomean(strm) > 1.25)+fmt.Sprintf(" (%.2f)", stats.Geomean(strm)),
			mark(cloudSp > 1.05)+fmt.Sprintf(" (%.2f)", cloudSp))
	}
	return []stats.Table{t}
}
