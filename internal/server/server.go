// Package server exposes the experiment engine over HTTP — the gazeserve
// service. POST /simulate runs one job (plus its no-prefetch baseline) and
// returns the paper's §IV-A3 metrics; POST /sweep batches a whole
// trace × prefetcher grid through one shard-parallel engine pass. All
// handlers share a single engine, so concurrent and repeated requests
// coalesce onto the same memoized (and optionally disk-persisted)
// simulations.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/engine"
	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Server serves the gazeserve HTTP API over one shared engine.
type Server struct {
	eng *engine.Engine
}

// New builds a server on the given engine.
func New(e *engine.Engine) *Server { return &Server{eng: e} }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /traces", s.handleTraces)
	mux.HandleFunc("GET /prefetchers", s.handlePrefetchers)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /simulate", s.handleSimulate)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	return mux
}

// SimulateRequest selects one simulation. Either Trace (replicated on
// Cores cores) or Traces (one per core) must be set.
type SimulateRequest struct {
	Trace      string   `json:"trace,omitempty"`
	Traces     []string `json:"traces,omitempty"`
	Prefetcher string   `json:"prefetcher"`
	L2         string   `json:"l2,omitempty"`
	Cores      int      `json:"cores,omitempty"`
}

// SimulateResponse carries the metrics the paper's tables report.
type SimulateResponse struct {
	Traces           []string `json:"traces"`
	Prefetcher       string   `json:"prefetcher"`
	L2               string   `json:"l2,omitempty"`
	Cores            int      `json:"cores"`
	IPC              float64  `json:"ipc"`
	Speedup          float64  `json:"speedup"`
	Accuracy         float64  `json:"accuracy"`
	Coverage         float64  `json:"coverage"`
	LateFraction     float64  `json:"late_fraction"`
	IssuedPrefetches uint64   `json:"issued_prefetches"`
	L1MPKI           float64  `json:"l1_mpki"`
	LLCMPKI          float64  `json:"llc_mpki"`
}

// SweepRequest describes a trace × prefetcher grid. Traces are given
// explicitly or drawn from a suite ("spec06", "spec17", "ligra",
// "parsec", "cloud", ...); each pair runs single-core.
type SweepRequest struct {
	Suite       string   `json:"suite,omitempty"`
	Traces      []string `json:"traces,omitempty"`
	Prefetchers []string `json:"prefetchers"`
}

// SweepResponse returns one row per (trace, prefetcher) pair plus the
// per-prefetcher geometric-mean speedup over the swept traces — the
// number the paper's Fig 6 bars plot.
type SweepResponse struct {
	Rows           []SimulateResponse `json:"rows"`
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup"`
}

// StatsResponse reports engine cache effectiveness.
type StatsResponse struct {
	Scale     engine.Scale    `json:"scale"`
	Counters  engine.Counters `json:"counters"`
	StoreDir  string          `json:"store_dir,omitempty"`
	StoreSize int             `json:"store_entries,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Suite string `json:"suite"`
	}
	var out []entry
	suite := r.URL.Query().Get("suite")
	for _, info := range workload.Catalogue() {
		if suite == "" || info.Suite == suite {
			out = append(out, entry{Name: info.Name, Suite: info.Suite})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePrefetchers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, prefetchers.EvaluatedNames())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Scale: s.eng.Scale(), Counters: s.eng.Counters()}
	if st := s.eng.Store(); st != nil {
		resp.StoreDir = st.Dir()
		resp.StoreSize = st.Len()
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxBodyBytes bounds request bodies so an oversized JSON document is
// rejected before it is ever held in memory.
const maxBodyBytes = 1 << 20

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	job, err := jobFor(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// One batched engine pass: the baseline and the target run in
	// parallel, and both memoize for later requests.
	results := s.eng.RunAll([]engine.Job{job.Baseline(), job})
	writeJSON(w, http.StatusOK, responseFor(req, job, results[1], results[0]))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	traces := req.Traces
	if req.Suite != "" {
		for _, info := range workload.Suite(req.Suite) {
			traces = append(traces, info.Name)
		}
		if len(traces) == len(req.Traces) {
			httpError(w, http.StatusBadRequest, "unknown suite %q", req.Suite)
			return
		}
	}
	if len(traces) == 0 || len(req.Prefetchers) == 0 {
		httpError(w, http.StatusBadRequest, "sweep needs traces (or a suite) and prefetchers")
		return
	}
	// Parametric prefetcher names (vGaze-<n>B, Gaze-PHT<n>) are valid for
	// every positive integer, so per-name validation alone cannot bound a
	// sweep — cap the grid itself.
	if grid := len(traces) * (len(req.Prefetchers) + 1); grid > maxSweepJobs {
		httpError(w, http.StatusBadRequest,
			"sweep of %d traces x %d prefetchers needs %d jobs, exceeding the limit of %d",
			len(traces), len(req.Prefetchers), grid, maxSweepJobs)
		return
	}

	// Validate each distinct trace and prefetcher name once before
	// spending any simulation time (constructing a prefetcher just to
	// validate its name is not free), then batch the entire grid —
	// baselines included — through one shard-parallel pass.
	for _, tr := range traces {
		if !workload.Exists(tr) {
			httpError(w, http.StatusBadRequest, "unknown trace %q", tr)
			return
		}
	}
	for _, pf := range req.Prefetchers {
		if _, err := prefetchers.New(pf); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var jobs []engine.Job
	for _, tr := range traces {
		jobs = append(jobs, engine.Job{Traces: []string{tr}, L1: []string{"none"}})
		for _, pf := range req.Prefetchers {
			jobs = append(jobs, engine.Job{Traces: []string{tr}, L1: []string{pf}})
		}
	}
	results := s.eng.RunAll(jobs)

	resp := SweepResponse{GeomeanSpeedup: make(map[string]float64)}
	perPF := make(map[string][]float64)
	stride := len(req.Prefetchers) + 1
	for ti, tr := range traces {
		base := results[ti*stride]
		for pi, pf := range req.Prefetchers {
			i := ti*stride + pi + 1
			row := responseFor(SimulateRequest{Trace: tr, Prefetcher: pf}, jobs[i], results[i], base)
			resp.Rows = append(resp.Rows, row)
			perPF[row.Prefetcher] = append(perPF[row.Prefetcher], row.Speedup)
		}
	}
	for pf, vals := range perPF {
		resp.GeomeanSpeedup[pf] = stats.Geomean(vals)
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxCores and maxSweepJobs bound per-request simulation size: the paper
// evaluates up to eight cores and its largest figure sweeps a few hundred
// (trace, prefetcher) pairs, and one unauthenticated request must not be
// able to wedge the process with an arbitrarily large system or grid.
const (
	maxCores     = 16
	maxSweepJobs = 1024
)

// jobFor validates a request against the workload catalogue and the
// prefetcher factory and converts it to an engine job.
func jobFor(req SimulateRequest) (engine.Job, error) {
	traces := req.Traces
	if len(traces) == 0 {
		if req.Trace == "" {
			return engine.Job{}, fmt.Errorf("need trace or traces")
		}
		cores := req.Cores
		if cores < 1 {
			cores = 1
		}
		if cores > maxCores {
			return engine.Job{}, fmt.Errorf("cores = %d exceeds the limit of %d", cores, maxCores)
		}
		for i := 0; i < cores; i++ {
			traces = append(traces, req.Trace)
		}
	}
	if len(traces) > maxCores {
		return engine.Job{}, fmt.Errorf("%d traces exceeds the per-job core limit of %d", len(traces), maxCores)
	}
	job := engine.Job{Traces: traces, L1: []string{req.Prefetcher}}
	if req.L2 != "" {
		job.L2 = []string{req.L2}
	}
	// Job.Validate is the engine's canonical invariant (traces exist,
	// prefetcher names construct, power-of-two core count); the engine
	// panics on jobs that skip it.
	if err := job.Validate(); err != nil {
		return engine.Job{}, err
	}
	return job, nil
}

func responseFor(req SimulateRequest, job engine.Job, res, base sim.Result) SimulateResponse {
	return SimulateResponse{
		Traces:           job.Traces,
		Prefetcher:       req.Prefetcher,
		L2:               req.L2,
		Cores:            len(job.Traces),
		IPC:              res.MeanIPC(),
		Speedup:          engine.Speedup(res, base),
		Accuracy:         res.Accuracy(),
		Coverage:         res.Coverage(),
		LateFraction:     res.LateFraction(),
		IssuedPrefetches: res.IssuedPrefetches(),
		L1MPKI:           res.L1MPKI(),
		LLCMPKI:          res.LLCMPKI(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
