// Command tracegen writes a named synthetic workload to a trace file —
// native GZTR, ChampSim-style lines, or gzip-wrapped variants — or prints
// its footprint statistics (the §III-C density analysis). The -format
// flag exists so synthetic traces round-trip through the same external
// decoders real captured traces use: a tracegen-exported champsim.gz file
// ingests into the traceset registry exactly like a foreign one.
//
// Usage:
//
//	tracegen -trace PageRank-61 -n 500000 -o pagerank.gztr
//	tracegen -trace lbm-1274 -n 200000 -format champsim.gz -o lbm.champsim.gz
//	tracegen -trace fotonik3d_s-8225 -n 200000 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		name      = flag.String("trace", "", "workload trace name")
		n         = flag.Int("n", 200_000, "number of records")
		out       = flag.String("o", "", "output file")
		format    = flag.String("format", "gztr", "output format: gztr | gztr.gz | champsim | champsim.gz")
		showStats = flag.Bool("stats", false, "print footprint statistics instead of writing")
	)
	flag.Parse()
	outFormat, err := trace.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "need -trace (run 'gazesim -traces' for the catalogue)")
		os.Exit(1)
	}
	recs, err := workload.Generate(*name, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *showStats {
		st := workload.AnalyzeFootprints(recs)
		fmt.Printf("trace               %s\n", *name)
		fmt.Printf("loads               %d\n", st.Loads)
		fmt.Printf("regions             %d\n", st.Regions)
		fmt.Printf("mean density        %.2f blocks\n", st.MeanDensity)
		fmt.Printf("fully dense         %d\n", st.Dense)
		fmt.Printf("single-block        %d\n", st.SingleBlock)
		fmt.Printf("density histogram   1:%d  2-8:%d  9-32:%d  33-63:%d  64:%d\n",
			st.DensityHistogram[0], st.DensityHistogram[1], st.DensityHistogram[2],
			st.DensityHistogram[3], st.DensityHistogram[4])
		fmt.Printf("trigger ambiguity   %.2f footprints/offset\n", st.TriggerAmbiguity)
		fmt.Println("top PCs:")
		for _, p := range workload.TopPCs(recs, 5) {
			fmt.Printf("  %#x  %.1f%%\n", p.PC, 100*p.Share)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "need -o <file> or -stats")
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeTrace(f, outFormat, recs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s (%s)\n", len(recs), *out, outFormat)
}

// writeTrace encodes recs to w in the requested format, finalizing the
// stream (gzip footers included).
func writeTrace(w io.Writer, f trace.Format, recs []trace.Record) error {
	return trace.WriteAll(w, f, recs)
}
