package engine_test

// Instrumentation must be invisible to content addressing: arming the
// full observability stack — tracer, timings collector, open parent
// span, phase histograms — changes neither the result values nor one
// byte of what the store persists. Spans and histograms observe the
// computation; they must never become part of it.

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestObsInstrumentationKeyInvisible(t *testing.T) {
	scale := engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}
	job := engine.Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}}

	run := func(dir string, traced bool) (sim.Result, map[string][]byte) {
		store, err := engine.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		opts := engine.Options{Scale: scale, Store: store}
		ctx := context.Background()
		if traced {
			opts.Phases = obs.NewMetrics().EnginePhase
			ctx = obs.WithTracer(ctx, obs.NewTracer(obs.TracerOptions{}))
			ctx = obs.WithTimings(ctx, obs.NewTimings())
			var span *obs.Span
			ctx, span = obs.Start(ctx, "test.run")
			defer span.End()
		}
		res, err := engine.New(opts).RunContext(ctx, job)
		if err != nil {
			t.Fatalf("traced=%v: %v", traced, err)
		}
		return res, storeBytes(t, dir)
	}

	base := t.TempDir()
	bareRes, bareStore := run(filepath.Join(base, "bare"), false)
	tracedRes, tracedStore := run(filepath.Join(base, "traced"), true)

	if !reflect.DeepEqual(bareRes, tracedRes) {
		t.Errorf("results differ with instrumentation armed:\nbare   %+v\ntraced %+v", bareRes, tracedRes)
	}
	if len(bareStore) == 0 {
		t.Fatal("bare run committed no store entries")
	}
	if len(tracedStore) != len(bareStore) {
		t.Fatalf("store entry count: bare %d, traced %d", len(bareStore), len(tracedStore))
	}
	for rel, want := range bareStore {
		got, ok := tracedStore[rel]
		if !ok {
			t.Errorf("traced store lacks %s — instrumentation changed a content address", rel)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("store file %s differs byte-wise with instrumentation armed", rel)
		}
	}
}
