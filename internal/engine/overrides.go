package engine

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Overrides declaratively perturbs the default Table II system
// configuration for one job. Every field is a plain value — no functions
// — so a Job carrying Overrides serializes to JSON, travels over HTTP,
// and content-addresses into the persisted result store. The zero value
// means "default configuration"; a zero field leaves that knob at its
// default (consequently a knob cannot be overridden *to* zero — none of
// the modelled knobs has a meaningful zero).
//
// The first three fields are exactly the paper's Fig 16 sensitivity axes.
type Overrides struct {
	// LLCMBPerCore resizes the shared LLC, in megabytes per core
	// (Fig 16b). Fractional sizes (0.5) are supported.
	LLCMBPerCore float64 `json:"llc_mb_per_core,omitempty"`
	// L2KB resizes the per-core L2C, in kilobytes (Fig 16c).
	L2KB int `json:"l2_kb,omitempty"`
	// DRAMMTPS sets the DRAM transfer rate, in mega-transfers per second
	// (Fig 16a).
	DRAMMTPS int `json:"dram_mtps,omitempty"`
	// PQCapacity and PQDrainRate bound the per-core prefetch queue.
	PQCapacity  int     `json:"pq_capacity,omitempty"`
	PQDrainRate float64 `json:"pq_drain_rate,omitempty"`
	// WarmupInstructions and SimInstructions replace the engine scale's
	// per-core instruction budgets.
	WarmupInstructions uint64 `json:"warmup_instructions,omitempty"`
	SimInstructions    uint64 `json:"sim_instructions,omitempty"`
	// SliceShards splits a single-core job's measurement window into this
	// many contiguous time slices simulated in parallel, each warmed by
	// replaying the warmup-budget's worth of records preceding it
	// (DESIGN.md §9). 0 and 1 both mean unsliced. Slicing changes the
	// simulated numbers (per-slice warmup is an approximation of full
	// history), so the shard count is part of the job's content address;
	// the merge itself is deterministic, independent of execution
	// parallelism. Only single-core jobs may slice.
	SliceShards int `json:"slice_shards,omitempty"`
}

// Override bounds. Jobs come in over HTTP, so every knob is range-checked:
// the lower bounds keep the simulated system constructible (cache geometry
// collapses below them) and the upper bounds keep one request from wedging
// the process with an absurdly large or long simulation.
const (
	minLLCMBPerCore, maxLLCMBPerCore = 0.125, 64.0
	minL2KB, maxL2KB                 = 16, 16384
	minDRAMMTPS, maxDRAMMTPS         = 100, 51200
	minPQCapacity, maxPQCapacity     = 1, 4096
	maxPQDrainRate                   = 64.0
	maxInstructions                  = 50_000_000
	// maxSliceShards bounds intra-trace parallelism: beyond ~64 slices the
	// per-slice warmup replay dominates the measured work.
	maxSliceShards = 64
)

// IsZero reports whether every knob is at its default.
func (o Overrides) IsZero() bool { return o == Overrides{} }

// Validate reports the first out-of-range knob. Field names in errors
// match the JSON encoding, so HTTP clients see the spelling they sent.
func (o Overrides) Validate() error {
	switch {
	// NaN compares false with everything, so the range checks below would
	// pass it through to a json.Marshal failure in CanonicalJSON.
	case math.IsNaN(o.LLCMBPerCore) || math.IsNaN(o.PQDrainRate):
		return fmt.Errorf("engine: llc_mb_per_core / pq_drain_rate must not be NaN")
	case o.LLCMBPerCore != 0 && (o.LLCMBPerCore < minLLCMBPerCore || o.LLCMBPerCore > maxLLCMBPerCore):
		return fmt.Errorf("engine: llc_mb_per_core = %g out of range [%g, %g]",
			o.LLCMBPerCore, minLLCMBPerCore, maxLLCMBPerCore)
	case o.L2KB != 0 && (o.L2KB < minL2KB || o.L2KB > maxL2KB):
		return fmt.Errorf("engine: l2_kb = %d out of range [%d, %d]", o.L2KB, minL2KB, maxL2KB)
	case o.DRAMMTPS != 0 && (o.DRAMMTPS < minDRAMMTPS || o.DRAMMTPS > maxDRAMMTPS):
		return fmt.Errorf("engine: dram_mtps = %d out of range [%d, %d]", o.DRAMMTPS, minDRAMMTPS, maxDRAMMTPS)
	case o.PQCapacity != 0 && (o.PQCapacity < minPQCapacity || o.PQCapacity > maxPQCapacity):
		return fmt.Errorf("engine: pq_capacity = %d out of range [%d, %d]", o.PQCapacity, minPQCapacity, maxPQCapacity)
	case o.PQDrainRate != 0 && (o.PQDrainRate < 0 || o.PQDrainRate > maxPQDrainRate):
		return fmt.Errorf("engine: pq_drain_rate = %g out of range (0, %g]", o.PQDrainRate, maxPQDrainRate)
	case o.WarmupInstructions > maxInstructions:
		return fmt.Errorf("engine: warmup_instructions = %d exceeds the limit of %d", o.WarmupInstructions, maxInstructions)
	case o.SimInstructions > maxInstructions:
		return fmt.Errorf("engine: sim_instructions = %d exceeds the limit of %d", o.SimInstructions, maxInstructions)
	case o.SliceShards != 0 && (o.SliceShards < 1 || o.SliceShards > maxSliceShards):
		return fmt.Errorf("engine: slice_shards = %d out of range [1, %d]", o.SliceShards, maxSliceShards)
	}
	return nil
}

// Apply returns cfg with every non-zero knob applied.
func (o Overrides) Apply(cfg sim.Config) sim.Config {
	if o.LLCMBPerCore != 0 {
		cfg = cfg.WithLLCSizeMB(o.LLCMBPerCore)
	}
	if o.L2KB != 0 {
		cfg = cfg.WithL2SizeKB(o.L2KB)
	}
	if o.DRAMMTPS != 0 {
		cfg = cfg.WithDRAMMTPS(o.DRAMMTPS)
	}
	if o.PQCapacity != 0 {
		cfg.PQCapacity = o.PQCapacity
	}
	if o.PQDrainRate != 0 {
		cfg.PQDrainRate = o.PQDrainRate
	}
	if o.WarmupInstructions != 0 {
		cfg.WarmupInstructions = o.WarmupInstructions
	}
	if o.SimInstructions != 0 {
		cfg.SimInstructions = o.SimInstructions
	}
	return cfg
}

// EffectiveBudgets returns the per-core warmup and sim instruction counts
// a job with these overrides actually runs at a scale: an overridden
// budget replaces the scale's. This single rule feeds both the canonical
// encoding (so pinned-budget jobs share cache entries across scales) and
// the server's request-work caps.
func (o Overrides) EffectiveBudgets(scale Scale) (warmup, sim uint64) {
	warmup, sim = scale.Warmup, scale.Sim
	if o.WarmupInstructions != 0 {
		warmup = o.WarmupInstructions
	}
	if o.SimInstructions != 0 {
		sim = o.SimInstructions
	}
	return warmup, sim
}

// SweepParams lists the knobs WithParam accepts — the enumerable axes a
// sensitivity sweep (Fig 16, POST /sweep) can walk.
func SweepParams() []string {
	return []string{"llc_mb_per_core", "l2_kb", "dram_mtps", "pq_capacity", "pq_drain_rate"}
}

// WithParam returns a copy with the named knob set to value, validating
// the result. Integer knobs reject fractional values instead of silently
// truncating, and zero is rejected for every knob — a zero field means
// "default", so accepting it would label a default-config run as the
// swept point. Param names match the Overrides JSON encoding.
func (o Overrides) WithParam(param string, value float64) (Overrides, error) {
	if value == 0 {
		return o, fmt.Errorf("engine: %s = 0 is not sweepable (zero means default)", param)
	}
	integral := func() (int, error) {
		if value != math.Trunc(value) {
			return 0, fmt.Errorf("engine: %s = %g must be an integer", param, value)
		}
		return int(value), nil
	}
	var err error
	switch param {
	case "llc_mb_per_core":
		o.LLCMBPerCore = value
	case "l2_kb":
		o.L2KB, err = integral()
	case "dram_mtps":
		o.DRAMMTPS, err = integral()
	case "pq_capacity":
		o.PQCapacity, err = integral()
	case "pq_drain_rate":
		o.PQDrainRate = value
	default:
		return o, fmt.Errorf("engine: unknown sweep param %q (want one of %v)", param, SweepParams())
	}
	if err != nil {
		return o, err
	}
	return o, o.Validate()
}
