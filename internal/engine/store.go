package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// StoreSchemaVersion invalidates every persisted record when the
// simulator's observable behaviour or the canonical job encoding changes
// (config defaults, metric definitions, workload generators, key schema).
// Bump it instead of asking users to wipe caches.
//
// v2: keys switched from ad-hoc fingerprint strings to the canonical JSON
// job encoding (declarative Overrides replaced config-mutation closures).
const StoreSchemaVersion = 2

// Store is a content-addressed, disk-persisted result cache. Keys are
// canonical JSON job encodings (Job.CanonicalJSON) — a declarative record
// of everything that determines a simulation's outcome: scale budgets,
// traces, prefetchers, config Overrides. Values are sim.Result records
// stored as JSON under dir/<hh>/<hash>.json, where the hash is the job's
// ContentAddress (the SHA-256 of the key) and hh its first byte. Writes
// are atomic (temp file + rename), so
// concurrent engines sharing one directory never observe torn records.
//
// A Store is safe for concurrent use; the zero value is not usable — call
// Open.
type Store struct {
	dir string

	// entries counts persisted records: initialized by one walk at Open,
	// then maintained incrementally so Len never rescans the directory.
	// Other processes sharing the directory can make it drift; it is a
	// monitoring number, not a correctness input.
	entries atomic.Int64

	// telemetryDocs/telemetryBytes count persisted .timeline sidecar
	// documents the same way: one Open walk, incremental maintenance,
	// monitoring-grade accuracy.
	telemetryDocs  atomic.Int64
	telemetryBytes atomic.Int64
}

// DefaultDir returns the store directory used when none is configured:
// $GAZE_CACHE_DIR if set, else <user cache dir>/gaze-repro, else a
// directory under os.TempDir.
func DefaultDir() string {
	if d := os.Getenv("GAZE_CACHE_DIR"); d != "" {
		return d
	}
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "gaze-repro")
	}
	return filepath.Join(os.TempDir(), "gaze-repro")
}

// Open creates (if needed) and returns the store rooted at dir. An empty
// dir selects DefaultDir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: opening result store: %w", err)
	}
	s := &Store{dir: dir}
	s.entries.Store(int64(s.countEntries()))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// record is the on-disk schema. Key is stored in full so hash collisions
// and cross-version reuse are detected on read rather than silently
// returning a wrong result.
type record struct {
	Version int        `json:"version"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
}

func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) path(key string) string {
	h := hashKey(key)
	return filepath.Join(s.dir, h[:2], h[2:]+".json")
}

// Get returns the persisted result for key. Corrupted, stale-version or
// colliding entries are deleted and reported as a miss, so a damaged cache
// heals itself through recomputation.
func (s *Store) Get(key string) (sim.Result, bool) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return sim.Result{}, false
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil ||
		rec.Version != StoreSchemaVersion || rec.Key != key {
		if os.Remove(p) == nil {
			s.entries.Add(-1)
		}
		return sim.Result{}, false
	}
	return rec.Result, true
}

// Put persists the result for key, replacing any previous entry.
func (s *Store) Put(key string, res sim.Result) error {
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("engine: writing result store: %w", err)
	}
	data, err := encodeRecord(key, res)
	if err != nil {
		return fmt.Errorf("engine: encoding result: %w", err)
	}
	_, statErr := os.Stat(p)
	if err := WriteFileAtomic(p, data); err != nil {
		return fmt.Errorf("engine: writing result store: %w", err)
	}
	if statErr != nil { // the write created the entry rather than replacing it
		s.entries.Add(1)
	}
	return nil
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so concurrent readers — and crashes — never observe a torn
// file. It is the torn-write discipline every persistence layer here
// (store records, job journals, job result documents) shares.
func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len returns the number of persisted entries (counted at Open, tracked
// incrementally after).
func (s *Store) Len() int { return int(s.entries.Load()) }

// Has reports whether an entry for key is present on disk, from a stat
// alone. It does not validate the record's version or key the way Get
// does, so a corrupt entry can answer true until a Get heals it — callers
// wanting the result itself must still Get (or Engine.Lookup).
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// StoreEntry describes one persisted record for GC and monitoring:
// its content address, on-disk size, and last-modified time (the age the
// GC policy measures — Put refreshes it, so a recomputed entry is young
// again).
type StoreEntry struct {
	Address string
	Bytes   int64
	ModTime time.Time
}

// isAddress reports whether s is a 64-hex-digit content address.
func isAddress(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// Entries walks the store and returns every persisted record that is
// address-shaped (dir/<hh>/<rest>.json with <hh><rest> a 64-hex-digit
// address). Foreign files and temp files are skipped; contents are not
// read, so a stale-schema record still lists (Open sweeps those, and
// Remove on one is harmless).
func (s *Store) Entries() []StoreEntry {
	var out []StoreEntry
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if path != s.dir && !isShardDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".json" {
			return nil
		}
		addr := filepath.Base(filepath.Dir(path)) + strings.TrimSuffix(d.Name(), ".json")
		if !isAddress(addr) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		out = append(out, StoreEntry{Address: addr, Bytes: info.Size(), ModTime: info.ModTime()})
		return nil
	})
	return out
}

// Remove deletes the entry at the given content address, returning the
// bytes reclaimed and whether an entry existed. It is the GC's delete
// primitive; a concurrent Put of the same address can recreate the entry
// immediately after, which is safe — the result is identical by
// content-addressing. A telemetry sidecar at the same address is deleted
// with its result (and counted into the reclaimed bytes): derived data
// never outlives the record it describes.
func (s *Store) Remove(addr string) (reclaimed int64, existed bool) {
	if !isAddress(addr) {
		return 0, false
	}
	p := filepath.Join(s.dir, addr[:2], addr[2:]+".json")
	info, err := os.Stat(p)
	if err != nil {
		return 0, false
	}
	if os.Remove(p) != nil {
		return 0, false
	}
	s.entries.Add(-1)
	reclaimed = info.Size()
	tp := s.telemetryPath(addr)
	if tinfo, err := os.Stat(tp); err == nil && os.Remove(tp) == nil {
		s.telemetryDocs.Add(-1)
		s.telemetryBytes.Add(-tinfo.Size())
		reclaimed += tinfo.Size()
	}
	return reclaimed, true
}

// telemetryPath returns the sidecar path for a content address. The
// .timeline extension keeps sidecars invisible to every .json-keyed walk
// (Entries, the Open-time sweep) — a telemetry document can never be
// mistaken for, or swept as, a stale result record.
func (s *Store) telemetryPath(addr string) string {
	return filepath.Join(s.dir, addr[:2], addr[2:]+".timeline")
}

// PutTelemetry persists the canonical telemetry document for a job key
// beside its result record, atomically, replacing any previous sidecar.
func (s *Store) PutTelemetry(key string, doc []byte) error {
	p := s.telemetryPath(hashKey(key))
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("engine: writing telemetry store: %w", err)
	}
	info, statErr := os.Stat(p)
	if err := WriteFileAtomic(p, doc); err != nil {
		return fmt.Errorf("engine: writing telemetry store: %w", err)
	}
	if statErr != nil {
		s.telemetryDocs.Add(1)
	} else {
		s.telemetryBytes.Add(-info.Size())
	}
	s.telemetryBytes.Add(int64(len(doc)))
	return nil
}

// GetTelemetry returns the persisted telemetry document bytes for a
// content address. The bytes are returned verbatim — serving and ETag
// layers hash them as-is.
func (s *Store) GetTelemetry(addr string) ([]byte, bool) {
	if !isAddress(addr) {
		return nil, false
	}
	data, err := os.ReadFile(s.telemetryPath(addr))
	if err != nil {
		return nil, false
	}
	return data, true
}

// TelemetryLen returns the number of persisted telemetry sidecars and
// their total bytes (counted at Open, tracked incrementally after).
func (s *Store) TelemetryLen() (docs int64, bytes int64) {
	return s.telemetryDocs.Load(), s.telemetryBytes.Load()
}

// recordPrefix is the exact leading bytes Put's MarshalIndent emits for a
// current-schema record (the trailing comma keeps e.g. version 20 from
// matching a version-2 check). Open's walk matches it to recognize our
// own records from a bounded read instead of loading every record's full
// contents on every process start.
var recordPrefix = fmt.Appendf(nil, "{\n\t\"version\": %d,", StoreSchemaVersion)

// isShardDir reports whether name is a two-hex-digit shard directory —
// the only kind of subdirectory the store creates.
func isShardDir(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// hasCurrentVersionPrefix reports whether the file starts with the exact
// byte prefix Put writes for the current schema. False on any error — the
// caller's slow path decides what to do.
func hasCurrentVersionPrefix(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	buf := make([]byte, len(recordPrefix))
	if _, err := io.ReadFull(f, buf); err != nil {
		return false
	}
	return bytes.Equal(buf, recordPrefix)
}

// countEntries walks the store once (at Open), counting records and
// sweeping garbage: temp files orphaned by killed processes (the age
// guard keeps it from deleting a concurrent engine's in-flight write) and
// records from stale schema versions. The latter matters because a schema
// bump can change the key format itself — v1 fingerprint-string records
// sit at paths no v2 Get ever probes, so the version-check-on-read
// cleanup would never reach them and they would inflate Len forever.
// Current-schema records are recognized from a bounded prefix read, so
// the steady-state walk stays cheap; only foreign-looking files pay a
// full read before deletion.
func (s *Store) countEntries() int {
	const staleAfter = time.Hour
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			// Only descend into the store's own <hh> shard directories:
			// anything else under the root (a foreign tool's data, a
			// mispointed jobs journal) is not ours to sweep.
			if path != s.dir && !isShardDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case filepath.Ext(path) == ".json":
			if hasCurrentVersionPrefix(path) {
				n++
				break
			}
			// Slow path: read the whole record to tell stale/corrupt
			// garbage (delete) apart from a transient read error (skip —
			// deleting on EMFILE or an NFS hiccup would discard valid
			// results; Len is a monitoring number and tolerates the drift).
			data, err := os.ReadFile(path)
			if err != nil {
				break
			}
			var rec struct {
				Version int `json:"version"`
			}
			switch err := json.Unmarshal(data, &rec); {
			case err == nil && rec.Version == StoreSchemaVersion:
				n++
			case err == nil && rec.Version > StoreSchemaVersion:
				// A newer binary sharing this directory wrote it; deleting
				// would make mixed-version deployments thrash the store to
				// empty on every Open. Leave it, don't count it.
			default: // unparseable or older-schema garbage
				os.Remove(path)
			}
		case filepath.Ext(path) == ".timeline":
			// Telemetry sidecars: counted for monitoring, never swept —
			// they are derived data verified on read, and GC removes them
			// with their result records.
			if addr := filepath.Base(filepath.Dir(path)) + strings.TrimSuffix(d.Name(), ".timeline"); isAddress(addr) {
				if info, err := d.Info(); err == nil {
					s.telemetryDocs.Add(1)
					s.telemetryBytes.Add(info.Size())
				}
			}
		case strings.HasPrefix(d.Name(), ".tmp-"):
			if info, err := d.Info(); err == nil && time.Since(info.ModTime()) > staleAfter {
				os.Remove(path)
			}
		}
		return nil
	})
	return n
}
