// End-to-end telemetry over the cluster seam: a worker-executed job's
// timeline documents must land on the coordinator's disk byte-identical
// to a single-node control run of the same job — the same store-equality
// guarantee result documents carry, extended to their sidecars.
package cluster_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/server"
)

const e2eTelemetryInterval = 5_000

// newArmedCoordNode is newCoordNode with interval telemetry armed on the
// coordinator's engine (for serving) — the computation happens on
// workers, so every timeline this node holds arrived over the wire.
func newArmedCoordNode(t *testing.T) *coordNode {
	t.Helper()
	dir := t.TempDir()
	store, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Scale: tiny, Store: store, TelemetryInterval: e2eTelemetryInterval})
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Engine:        eng,
		LeaseTTL:      30 * time.Second,
		MaxLeaseBatch: 1,
	})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: server.Compiler(eng), Workers: 2, Execute: coord.Execute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(server.New(eng).AttachJobs(mgr).AttachCluster(coord).Handler())
	t.Cleanup(ts.Close)
	return &coordNode{ts: ts, coord: coord, dir: dir}
}

// timelineSnapshot maps relative path → contents for every .timeline
// sidecar under a store directory.
func timelineSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".timeline" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestClusterTelemetryByteIdenticalToLocal(t *testing.T) {
	node := newArmedCoordNode(t)

	// The worker arms the same interval: its engine computes, so it is
	// the one collecting — mirroring gazeserve -worker -telemetry-interval.
	w := cluster.NewWorker(cluster.WorkerOptions{
		Client:       cluster.NewClient(node.ts.URL, cluster.ClientOptions{Backoff: 5 * time.Millisecond}),
		Engine:       engine.New(engine.Options{Scale: tiny, TelemetryInterval: e2eTelemetryInterval}),
		Concurrency:  1,
		Name:         "telemetry-worker",
		PollInterval: 10 * time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		done <- w.Run(ctx)
		close(done)
	}()
	t.Cleanup(func() {
		cancel()
		for range done {
		}
	})

	const body = `{"type":"simulate","request":{"trace":"lbm-1274","prefetcher":"Gaze"}}`
	var submitted struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, node.ts.URL+"/jobs", body, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitJob(t, node.ts.URL, submitted.ID, nil)

	// The terminal job links its timelines, and every link serves from
	// the coordinator — which never simulated a single instruction.
	r, err := http.Get(node.ts.URL + "/jobs/" + submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Timelines []string `json:"timelines"`
	}
	err = json.NewDecoder(r.Body).Decode(&st)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Timelines) != 2 {
		t.Fatalf("job links %d timelines, want 2 (target + baseline): %v", len(st.Timelines), st.Timelines)
	}
	for _, link := range st.Timelines {
		resp, err := http.Get(node.ts.URL + link)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("linked timeline %s = %d: %s", link, resp.StatusCode, data)
		}
		addr := strings.TrimSuffix(strings.TrimPrefix(link, "/results/"), "/timeline")
		if _, _, err := engine.ImportTelemetry(addr, data); err != nil {
			t.Errorf("worker-uploaded timeline %s does not verify: %v", link, err)
		}
	}

	// Single-node control: the same job computed locally with telemetry
	// armed must persist byte-identical sidecars at identical paths.
	localDir := t.TempDir()
	localStore, err := engine.Open(localDir)
	if err != nil {
		t.Fatal(err)
	}
	localEng := engine.New(engine.Options{Scale: tiny, Store: localStore, TelemetryInterval: e2eTelemetryInterval})
	localMgr, err := jobs.Open(jobs.Options{Engine: localEng, Compile: server.Compiler(localEng), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { localMgr.Shutdown(context.Background()) }) //nolint:errcheck
	localTS := httptest.NewServer(server.New(localEng).AttachJobs(localMgr).Handler())
	t.Cleanup(localTS.Close)
	var localJob struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, localTS.URL+"/jobs", body, &localJob); code != http.StatusAccepted {
		t.Fatalf("local submit: status %d", code)
	}
	waitJob(t, localTS.URL, localJob.ID, nil)

	clusterTL, localTL := timelineSnapshot(t, node.dir), timelineSnapshot(t, localDir)
	if len(clusterTL) == 0 {
		t.Fatal("cluster run landed no timeline sidecars on the coordinator")
	}
	if len(clusterTL) != len(localTL) {
		t.Fatalf("timeline count: cluster %d, local %d", len(clusterTL), len(localTL))
	}
	for rel, data := range localTL {
		if clusterTL[rel] != data {
			t.Errorf("timeline sidecar %s differs between worker-executed and local runs", rel)
		}
	}
}
