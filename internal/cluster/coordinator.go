package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Engine owns the authoritative memo and store results are adopted
	// into, and defines the scale every worker must match. Required.
	Engine *engine.Engine
	// LeaseTTL is the lease and worker-liveness deadline; heartbeats
	// (expected every TTL/3) renew it. Default 15s.
	LeaseTTL time.Duration
	// MaxLeaseBatch caps units per lease call regardless of what the
	// worker asks for. Default 16.
	MaxLeaseBatch int
	// Now overrides the clock for deterministic tests (default
	// time.Now).
	Now func() time.Time
	// Tracer, when set, records a synthesized "cluster.lease" span for
	// every settled or revoked lease, parented on the trace of the sweep
	// that enqueued the unit. Observability-only.
	Tracer *obs.Tracer
	// LeaseHold, when set, observes each lease's hold time — grant to
	// settle/requeue — in seconds. Observability-only.
	LeaseHold *obs.Histogram
}

// unitState tracks a unit through the lease table.
type unitState int

const (
	unitPending unitState = iota
	unitLeased
)

// unit is one engine job awaiting remote execution. Settled units
// (completed or failed) leave the table entirely — a late upload for a
// settled unit takes the duplicate path.
type unit struct {
	addr     string
	job      engine.Job
	state    unitState
	worker   string    // leaseholder id when leased
	deadline time.Time // lease expiry when leased
	leasedAt time.Time // lease grant time, for the hold-time histogram
	// traceparent is the trace identity of the first sweep that enqueued
	// the unit; workers propagate it so their spans join that trace.
	traceparent string
	// waiters maps each waiting Execute batch to the result indices
	// this unit fills in it (a batch can map several indices to one
	// address: baseline jobs fold PQ knobs out of their canonical
	// encoding, so distinct grid rows can share an address).
	waiters map[*batch][]int
}

// workerInfo is one registered worker.
type workerInfo struct {
	id          string
	name        string
	concurrency int
	deadline    time.Time
	leased      int
}

// Coordinator owns the lease table: which engine jobs are pending,
// which worker holds each lease and until when, and which Execute calls
// are waiting on each unit. It is safe for concurrent use. Expiry is
// checked lazily on every lease/heartbeat and eagerly via Tick (driven
// by a ticker in gazeserve), so a silent worker's units requeue even
// when no other worker is polling.
type Coordinator struct {
	eng       *engine.Engine
	ttl       time.Duration
	maxBatch  int
	now       func() time.Time
	tracer    *obs.Tracer
	leaseHold *obs.Histogram

	mu      sync.Mutex
	seq     int
	workers map[string]*workerInfo
	units   map[string]*unit
	queue   []string // pending-unit addresses, FIFO with lazy deletion

	leases       uint64
	releases     uint64
	results      uint64
	duplicates   uint64
	failures     uint64
	replications uint64
}

// NewCoordinator builds a coordinator.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.Engine == nil {
		panic("cluster: CoordinatorOptions.Engine is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.MaxLeaseBatch <= 0 {
		opts.MaxLeaseBatch = 16
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Coordinator{
		eng:       opts.Engine,
		ttl:       opts.LeaseTTL,
		maxBatch:  opts.MaxLeaseBatch,
		now:       opts.Now,
		tracer:    opts.Tracer,
		leaseHold: opts.LeaseHold,
		workers:   make(map[string]*workerInfo),
		units:     make(map[string]*unit),
	}
}

// LeaseTTL returns the configured lease deadline.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// Register admits a worker after the compatibility handshake: the
// outcome-determining scale knobs (TraceLen, Warmup, Sim —
// TracesPerSuite only selects jobs) and the store schema version must
// match, or the worker would compute results under different content
// addresses than the coordinator hands out.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	s := c.eng.Scale()
	if req.StoreSchemaVersion != engine.StoreSchemaVersion {
		return RegisterResponse{}, fmt.Errorf("%w: store schema v%d, coordinator runs v%d",
			ErrIncompatible, req.StoreSchemaVersion, engine.StoreSchemaVersion)
	}
	if req.Scale.TraceLen != s.TraceLen || req.Scale.Warmup != s.Warmup || req.Scale.Sim != s.Sim {
		return RegisterResponse{}, fmt.Errorf(
			"%w: scale {len %d warmup %d sim %d}, coordinator runs {len %d warmup %d sim %d}",
			ErrIncompatible, req.Scale.TraceLen, req.Scale.Warmup, req.Scale.Sim,
			s.TraceLen, s.Warmup, s.Sim)
	}
	conc := req.Concurrency
	if conc <= 0 {
		conc = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	if name := sanitizeName(req.Name); name != "" {
		id = fmt.Sprintf("%s-%d", name, c.seq)
	}
	c.workers[id] = &workerInfo{
		id:          id,
		name:        req.Name,
		concurrency: conc,
		deadline:    c.now().Add(c.ttl),
	}
	return RegisterResponse{WorkerID: id, LeaseTTLMS: c.ttl.Milliseconds()}, nil
}

// sanitizeName keeps worker-supplied label characters that are safe in
// ids, URLs and log lines.
func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name) && len(out) < 32; i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		}
	}
	return string(out)
}

// Deregister removes a worker gracefully, requeueing its leased units
// immediately instead of waiting out their deadlines.
func (c *Coordinator) Deregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[id]; !ok {
		return ErrUnknownWorker
	}
	delete(c.workers, id)
	for addr, u := range c.units {
		if u.state == unitLeased && u.worker == id {
			c.requeueLocked(addr, u)
		}
	}
	return nil
}

// settleLeaseLocked observes a unit leaving the leased state — settled,
// failed or revoked — feeding the lease-hold histogram and recording a
// synthesized lease-lifecycle span on the trace of the sweep that
// enqueued the unit. Caller holds c.mu.
func (c *Coordinator) settleLeaseLocked(u *unit, outcome string) {
	if u.state != unitLeased || u.leasedAt.IsZero() {
		return
	}
	d := c.now().Sub(u.leasedAt)
	c.leaseHold.Observe(d.Seconds())
	if c.tracer != nil {
		parent, _ := obs.ParseTraceparent(u.traceparent)
		c.tracer.Observe(parent, "cluster.lease", u.leasedAt, d,
			obs.String("worker", u.worker), obs.String("outcome", outcome))
	}
}

// requeueLocked returns a leased unit to the pending queue (or drops it
// when no Execute batch waits on it any more).
func (c *Coordinator) requeueLocked(addr string, u *unit) {
	c.settleLeaseLocked(u, "requeued")
	c.releases++
	if len(u.waiters) == 0 {
		delete(c.units, addr)
		return
	}
	u.state = unitPending
	u.worker = ""
	u.deadline = time.Time{}
	u.leasedAt = time.Time{}
	c.queue = append(c.queue, addr)
}

// Heartbeat renews the worker's liveness deadline and every lease it
// holds, and folds the reported replication delta into the aggregate.
func (c *Coordinator) Heartbeat(id string, hb HeartbeatRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	w, ok := c.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	w.deadline = now.Add(c.ttl)
	for _, u := range c.units {
		if u.state == unitLeased && u.worker == id {
			u.deadline = now.Add(c.ttl)
		}
	}
	c.replications += hb.Replicated
	return nil
}

// Lease hands out up to max pending units (capped by the coordinator's
// batch limit), marking each leased to the worker until the deadline.
// Leasing renews the worker's own liveness like a heartbeat.
func (c *Coordinator) Lease(id string, max int) ([]WorkUnit, error) {
	if max <= 0 || max > c.maxBatch {
		max = c.maxBatch
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	w, ok := c.workers[id]
	if !ok {
		return nil, ErrUnknownWorker
	}
	w.deadline = now.Add(c.ttl)
	var out []WorkUnit
	i := 0
	for ; i < len(c.queue) && len(out) < max; i++ {
		addr := c.queue[i]
		u := c.units[addr]
		if u == nil || u.state != unitPending {
			continue // lazily dropped or already re-leased
		}
		u.state = unitLeased
		u.worker = id
		u.deadline = now.Add(c.ttl)
		u.leasedAt = now
		c.leases++
		out = append(out, WorkUnit{Address: addr, Job: u.job, Traceparent: u.traceparent})
	}
	c.queue = c.queue[i:]
	return out, nil
}

// Tick expires overdue leases and silent workers against the current
// time. gazeserve drives it on a ticker so recovery does not depend on
// another worker happening to poll.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.now())
}

// expireLocked requeues units whose lease deadline passed and drops
// workers whose liveness deadline passed. A worker's expiry does not
// touch its units directly — their own deadlines were set from the same
// heartbeats and expire on their own.
func (c *Coordinator) expireLocked(now time.Time) {
	for addr, u := range c.units {
		if u.state == unitLeased && now.After(u.deadline) {
			c.requeueLocked(addr, u)
		}
	}
	for id, w := range c.workers {
		if now.After(w.deadline) {
			delete(c.workers, id)
		}
	}
}

// CompleteResult verifies and commits an uploaded result document.
// Verification (engine.ImportResult) is what makes this endpoint safe:
// the document's embedded key must hash to addr, so an upload can only
// ever supply the result for the work the address names. The result is
// adopted into the coordinator's memo and store either way; settling a
// live unit additionally wakes every sweep waiting on it. The returned
// bool is false for duplicates (already-settled or never-known units).
func (c *Coordinator) CompleteResult(addr string, doc []byte) (bool, error) {
	key, res, err := engine.ImportResult(addr, doc)
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadResult, err)
	}
	c.eng.Adopt(key, res)
	c.mu.Lock()
	u := c.units[addr]
	var waiters map[*batch][]int
	var label string
	if u != nil {
		c.settleLeaseLocked(u, "completed")
		waiters = u.waiters
		label = u.job.String()
		delete(c.units, addr)
		c.results++
	} else {
		c.duplicates++
	}
	c.mu.Unlock()
	// Waiter delivery happens outside c.mu: batch completion invokes the
	// jobs manager's progress callback, which takes the manager's lock.
	for b, idx := range waiters {
		b.complete(idx, res, false, label, addr)
	}
	return u != nil, nil
}

// CompleteTelemetry verifies and adopts an uploaded telemetry document.
// The same verification shape as CompleteResult protects it: the
// document's embedded key must hash to addr (engine.ImportTelemetry), so
// an upload can only attach a timeline to the work the address names.
// Telemetry is a sidecar of the result, not a unit outcome — it settles
// no lease and wakes no waiters, it just lands byte-identically in the
// coordinator's telemetry memo and store.
func (c *Coordinator) CompleteTelemetry(addr string, doc []byte) error {
	key, _, err := engine.ImportTelemetry(addr, doc)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadTelemetry, err)
	}
	c.eng.AdoptTelemetry(key, doc)
	return nil
}

// FailUnit settles a unit as failed on a worker's deterministic-error
// report, failing every sweep waiting on it. Reports for unknown or
// already-settled units are ignored (false): the unit may have been
// completed by another worker in the meantime, which supersedes the
// failure.
func (c *Coordinator) FailUnit(addr, workerID, msg string) bool {
	c.mu.Lock()
	u := c.units[addr]
	var waiters map[*batch][]int
	if u != nil {
		c.settleLeaseLocked(u, "failed")
		waiters = u.waiters
		delete(c.units, addr)
		c.failures++
	}
	c.mu.Unlock()
	if u == nil {
		return false
	}
	short := addr
	if len(short) > 12 {
		short = short[:12]
	}
	err := fmt.Errorf("cluster: unit %s failed on worker %s: %s", short, workerID, msg)
	for b := range waiters {
		b.fail(err)
	}
	return true
}

// Counters returns the monitoring snapshot.
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.countersLocked()
}

func (c *Coordinator) countersLocked() Counters {
	cts := Counters{
		Workers:          len(c.workers),
		Leases:           c.leases,
		Releases:         c.releases,
		Results:          c.results,
		DuplicateResults: c.duplicates,
		Failures:         c.failures,
		Replications:     c.replications,
	}
	for _, u := range c.units {
		if u.state == unitPending {
			cts.UnitsPending++
		} else {
			cts.UnitsLeased++
		}
	}
	return cts
}

// Info returns the GET /cluster document.
func (c *Coordinator) Info() Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	info := Info{
		Scale:              c.eng.Scale(),
		StoreSchemaVersion: engine.StoreSchemaVersion,
		LeaseTTLMS:         c.ttl.Milliseconds(),
		Workers:            []WorkerStatus{},
		Counters:           c.countersLocked(),
	}
	leased := make(map[string]int)
	for _, u := range c.units {
		if u.state == unitLeased {
			leased[u.worker]++
		}
	}
	for _, w := range c.workers {
		info.Workers = append(info.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Concurrency: w.concurrency, Leased: leased[w.id],
		})
	}
	return info
}

// Execute is the cluster-dispatch jobs.Executor: it resolves each job
// against the coordinator engine's memo/store first (cluster or not,
// completed work is never redone), enqueues the rest as lease units,
// and waits for workers to settle them. Results return in input order;
// ctx cancellation detaches the batch — pending units nobody else waits
// on are dropped, leased ones complete harmlessly into the store.
func (c *Coordinator) Execute(ctx context.Context, js []engine.Job, progress func(engine.Progress)) ([]sim.Result, error) {
	b := newBatch(len(js), progress, c.now)
	if len(js) == 0 {
		return b.results, ctx.Err()
	}
	scale := c.eng.Scale()
	type planned struct {
		job     engine.Job
		indices []int
	}
	var order []string
	pending := make(map[string]*planned)
	for i, j := range js {
		if res, ok := c.eng.Lookup(j); ok {
			b.complete([]int{i}, res, true, j.String(), j.ContentAddress(scale))
			continue
		}
		addr := j.ContentAddress(scale)
		p := pending[addr]
		if p == nil {
			p = &planned{job: j}
			pending[addr] = p
			order = append(order, addr)
		}
		p.indices = append(p.indices, i)
	}
	if len(order) > 0 {
		tp := obs.ContextTraceparent(ctx)
		c.mu.Lock()
		for _, addr := range order {
			p := pending[addr]
			u := c.units[addr]
			if u == nil {
				u = &unit{addr: addr, job: p.job, state: unitPending, traceparent: tp, waiters: make(map[*batch][]int)}
				c.units[addr] = u
				c.queue = append(c.queue, addr)
			} else if u.traceparent == "" {
				u.traceparent = tp
			}
			u.waiters[b] = append(u.waiters[b], p.indices...)
			b.addrs = append(b.addrs, addr)
		}
		c.mu.Unlock()
	}
	select {
	case <-b.doneCh:
		if b.err != nil {
			// A failed unit finishes the batch while sibling units are
			// still live; detach so they are not executed (or delivered)
			// for a sweep that already failed.
			c.detach(b)
		}
		return b.results, b.err
	case <-ctx.Done():
		c.detach(b)
		return b.results, ctx.Err()
	}
}

// detach removes a finished or cancelled batch from every unit it
// subscribed to, dropping pending units with no remaining waiters
// (leased ones run to completion — the result lands in the store, which
// is never wasted).
func (c *Coordinator) detach(b *batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, addr := range b.addrs {
		u := c.units[addr]
		if u == nil {
			continue
		}
		delete(u.waiters, b)
		if len(u.waiters) == 0 && u.state == unitPending {
			delete(c.units, addr) // queue entry is lazily skipped
		}
	}
}

// batch is one Execute call's result assembly: the output slice, the
// count of outstanding indices, and the progress reporter. Delivery
// happens under its own lock, never the coordinator's.
type batch struct {
	mu       sync.Mutex
	results  []sim.Result
	done     int
	computed int // non-cached completions, for the ETA estimate
	total    int
	start    time.Time
	nowFn    func() time.Time
	progress func(engine.Progress)
	err      error
	finished bool
	doneCh   chan struct{}
	// addrs lists the unit addresses this batch subscribed to, for
	// detach; written before waiting, read only after the batch leaves
	// the units table, so unsynchronized access is safe.
	addrs []string
}

func newBatch(n int, progress func(engine.Progress), now func() time.Time) *batch {
	return &batch{
		results:  make([]sim.Result, n),
		total:    n,
		start:    now(),
		nowFn:    now,
		progress: progress,
		doneCh:   make(chan struct{}),
	}
}

// complete fills the batch indices a settled unit maps to and reports
// progress; the last completion closes doneCh.
func (b *batch) complete(indices []int, res sim.Result, cached bool, label, addr string) {
	b.mu.Lock()
	if b.finished {
		b.mu.Unlock()
		return
	}
	for _, i := range indices {
		b.results[i] = res
	}
	b.done += len(indices)
	if !cached {
		b.computed++
	}
	last := b.done >= b.total
	if last {
		b.finished = true
	}
	if b.progress != nil {
		elapsed := b.nowFn().Sub(b.start)
		var remaining time.Duration
		if b.computed > 0 && b.done < b.total {
			remaining = time.Duration(float64(elapsed) / float64(b.computed) * float64(b.total-b.done))
			if remaining < 0 {
				remaining = 0
			}
		}
		b.progress(engine.Progress{
			Done: b.done, Total: b.total, Cached: cached,
			Job: label, Address: addr,
			Elapsed: elapsed, Remaining: remaining,
		})
	}
	b.mu.Unlock()
	if last {
		close(b.doneCh)
	}
}

// fail finishes the batch with an error. Partial results already
// delivered stay in place, mirroring RunAllContext's partial-result
// contract.
func (b *batch) fail(err error) {
	b.mu.Lock()
	if b.finished {
		b.mu.Unlock()
		return
	}
	b.finished = true
	b.err = err
	b.mu.Unlock()
	close(b.doneCh)
}
