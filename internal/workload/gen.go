package workload

import (
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/trace"
)

// kind selects the generation template for a workload.
type kind uint8

const (
	// kindStream: long stride-1 (or strided) traversals over fresh pages —
	// bwaves/lbm/leslie3d-style spatial streaming.
	kindStream kind = iota
	// kindMixedSpatial: recurring spatial footprint families (moderate
	// density) plus a streaming component — typical SPEC behaviour.
	kindMixedSpatial
	// kindIrregular: pointer chasing over a large footprint with temporal
	// (but not spatial) repetition — mcf/canneal/omnetpp.
	kindIrregular
	// kindGraphInit: data-preparation phase of graph workloads — nearly
	// pure streaming (Ligra traces with small suffix numbers, Fig 10).
	kindGraphInit
	// kindGraphCompute: frontier-driven compute phase — dense streaming
	// regions interleaved with sparse irregular regions whose trigger
	// block is often 0 (the §III-C over-prefetch hazard).
	kindGraphCompute
	// kindCloud: server workloads — many footprint families, ambiguous
	// trigger offsets, rotating trigger PCs, pattern churn (Fig 1's
	// CloudSuite axis).
	kindCloud
	// kindServer: QMM srv — small hot working set, low data MPKI, sparse
	// irregular region activations (prefetchers should stand down).
	kindServer
	// kindClient: QMM clt — memory-intensive compute, streaming heavy.
	kindClient
)

// profile parameterizes a named workload.
type profile struct {
	suite string
	kind  kind
	// gapMean is the mean number of non-memory instructions per load.
	gapMean float64
	// intensity scales footprint/stream sizes (1.0 = template default).
	intensity float64
	// ambiguity in [0,1] controls how strongly footprint families share
	// trigger offsets (mixed-spatial workloads; fotonik3d-like = high).
	ambiguity float64
	// reuse is the probability a stream re-sweeps its previous range.
	reuse float64
	// strideBlocks is the stream stride in blocks (default 1).
	strideBlocks int
}

// gen drives record generation for one workload.
type gen struct {
	name string
	spec profile
	r    *rng.Source

	recs []trace.Record

	// nextFreshPage hands out previously untouched 4KB pages.
	nextFreshPage uint64
	// recentPages is a ring of recently used pages for revisits.
	recentPages []uint64
}

const (
	// loadPCBase is where generated load PCs start; spacing keeps distinct
	// logical load sites on distinct PCs.
	loadPCBase = 0x0000_7000_0040_0000
	// dataBase is where generated data pages start.
	dataBase = 0x0000_1000_0000_0000
)

func (g *gen) records(n int) []trace.Record {
	g.recs = make([]trace.Record, 0, n)
	g.nextFreshPage = dataBase >> mem.PageBits
	build(g, n)
	if len(g.recs) > n {
		g.recs = g.recs[:n]
	}
	return g.recs
}

// emit appends one load record.
func (g *gen) emit(pc, addr uint64, kind trace.Kind) {
	gap := g.r.Geometric(g.spec.gapMean) - 1
	if gap > 1000 {
		gap = 1000
	}
	g.recs = append(g.recs, trace.Record{
		PC:     pc,
		Addr:   addr,
		NonMem: uint16(gap),
		Kind:   kind,
	})
}

// freshPage returns a never-before-used page number. Consecutive calls
// return consecutive virtual pages (streams look contiguous in virtual
// space; the simulator's translator scatters them physically).
func (g *gen) freshPage() uint64 {
	p := g.nextFreshPage
	g.nextFreshPage++
	g.rememberPage(p)
	return p
}

// distantFreshPage returns an unused page far from the streaming range, so
// irregular allocations do not accidentally extend streams.
func (g *gen) distantFreshPage() uint64 {
	// Jump the allocation cursor by a random gap.
	g.nextFreshPage += uint64(2 + g.r.Intn(64))
	return g.freshPage()
}

func (g *gen) rememberPage(p uint64) {
	const window = 512
	if len(g.recentPages) < window {
		g.recentPages = append(g.recentPages, p)
		return
	}
	g.recentPages[g.r.Intn(window)] = p
}

// revisitPage returns a recently used page, or a fresh one when history is
// empty.
func (g *gen) revisitPage() uint64 {
	if len(g.recentPages) == 0 {
		return g.freshPage()
	}
	return g.recentPages[g.r.Intn(len(g.recentPages))]
}

// regionStream is one in-flight region activation: a sequence of block
// offsets accessed in pattern order on a concrete page.
type regionStream struct {
	page  uint64
	pcs   []uint64 // pcs[i] is the PC of the i-th access
	order []int    // block offsets in access order
	pos   int
}

func (rs *regionStream) done() bool { return rs.pos >= len(rs.order) }

func (rs *regionStream) next() (pc, addr uint64) {
	off := rs.order[rs.pos]
	pc = rs.pcs[rs.pos%len(rs.pcs)]
	rs.pos++
	return pc, uint64(mem.BlockAddr(rs.page, off))
}

// interleave runs a pool of region streams, emitting one access at a time
// from a randomly chosen active stream and refilling exhausted slots from
// makeStream (which receives the slot index, so slot-pinned sources like
// array streams keep exactly one active region each), until total accesses
// have been emitted. This models several simultaneously active regions,
// which is what the 64-entry FT/AT structures contend with.
func (g *gen) interleave(pool int, total int, makeStream func(slot int) *regionStream) {
	active := make([]*regionStream, pool)
	for i := range active {
		active[i] = makeStream(i)
	}
	for emitted := 0; emitted < total; emitted++ {
		i := g.r.Intn(len(active))
		rs := active[i]
		pc, addr := rs.next()
		g.emit(pc, addr, trace.Load)
		if rs.done() {
			active[i] = makeStream(i)
		}
	}
}

// sequentialOrder returns [first, first+1, ..., last].
func sequentialOrder(first, last int) []int {
	out := make([]int, 0, last-first+1)
	for o := first; o <= last; o++ {
		out = append(out, o)
	}
	return out
}
