// Package prefetch defines the interface between the simulator and
// hardware prefetchers, plus the shared building blocks most spatial
// prefetchers are made of: set-associative LRU metadata tables and the
// issue queue that paces prefetch requests into the memory system.
//
// All evaluated prefetchers are L1D prefetchers (the paper's default
// placement, §IV-A2): they observe every demand load the L1D sees —
// virtual address, PC and hit/miss — and issue requests for virtual line
// addresses with a target fill level (L1 or L2; none of the evaluated
// designs fills only the LLC).
package prefetch

// Level is the cache level a prefetch targets.
type Level uint8

const (
	// LevelL1 fills L1D (and the levels below it).
	LevelL1 Level = iota
	// LevelL2 fills L2C (and LLC) but not L1D — the lower-confidence
	// placement used by Gaze's streaming stage 1 and by PMP/vBerti.
	LevelL2
)

// String implements fmt.Stringer.
func (l Level) String() string {
	if l == LevelL1 {
		return "L1"
	}
	return "L2"
}

// Access describes one demand load observed at the L1D.
type Access struct {
	// PC is the load's program counter.
	PC uint64
	// VAddr is the full virtual byte address.
	VAddr uint64
	// PAddr is the translated physical byte address.
	PAddr uint64
	// Cycle is the core cycle at which the load issued.
	Cycle float64
	// L1Hit reports whether the access hit in the L1D.
	L1Hit bool
	// MissLatency is the latency the access is about to pay (0 on hits);
	// latency-aware prefetchers (Berti) consume it.
	MissLatency float64
}

// Request is a prefetch candidate: a virtual line address plus fill level.
type Request struct {
	// VLine is the virtual byte address of the target line (line-aligned).
	VLine uint64
	// Level selects the fill placement.
	Level Level
}

// IssueFunc receives requests from a prefetcher during training.
type IssueFunc func(Request)

// Sink receives issued prefetch requests. It is the reusable counterpart
// of IssueFunc: a simulator binds one Sink per (core, queue) at setup and
// re-points it at the current cycle each record, instead of allocating a
// fresh closure per Train call in the hot loop.
type Sink interface {
	Issue(Request)
}

// QueueSink is the standard Sink: it pushes requests into a Queue at a
// mutable issue cycle. The owner sets Now before each Train call; the
// Issue method value (bound once) then serves as an allocation-free
// IssueFunc for every record of the run.
type QueueSink struct {
	Q *Queue
	// Now is the cycle Push sees; the simulator updates it per record.
	Now float64
}

// Issue implements Sink.
func (s *QueueSink) Issue(req Request) { s.Q.Push(req, s.Now) }

// Prefetcher is the contract every evaluated design implements.
type Prefetcher interface {
	// Name identifies the prefetcher in reports ("Gaze", "PMP", ...).
	Name() string
	// Train observes one L1D load and may issue prefetches.
	Train(a Access, issue IssueFunc)
	// EvictNotify reports eviction of a virtual line from the L1D.
	// Spatial prefetchers treat it as a region-deactivation signal.
	EvictNotify(vline uint64)
}

// BandwidthAware is implemented by prefetchers that modulate
// aggressiveness with memory-bandwidth pressure (DSPatch). The simulator
// injects a probe returning current DRAM pressure in [0, +inf), where >1
// means requests queue behind the data bus.
type BandwidthAware interface {
	SetBandwidthProbe(func() float64)
}

// EvictObserver is implemented by prefetchers that learn from prefetch
// usefulness feedback (the PPF half of SPP-PPF). The simulator reports
// every L1 eviction with whether the victim was an untouched prefetched
// line.
type EvictObserver interface {
	EvictDetail(vline uint64, wasUselessPrefetch bool)
}

// Introspection is a point-in-time characterization of a prefetcher's
// learned state, exposed to the telemetry layer. The fields are the
// paper-level questions a timeline viewer asks of a spatial prefetcher:
// how full its pattern storage is, how its issue traffic splits between
// the streaming and pattern-history paths, and how quickly spatial
// regions recur.
type Introspection struct {
	// PatternEntries is the number of live pattern-table entries;
	// PatternCapacity the table's total capacity.
	PatternEntries  int `json:"pattern_entries"`
	PatternCapacity int `json:"pattern_capacity"`
	// StreamHits counts prefetch decisions taken by a streaming/stride
	// path; PatternHits those taken on a pattern-table hit.
	StreamHits  uint64 `json:"stream_hits"`
	PatternHits uint64 `json:"pattern_hits"`
	// ReuseHistogram is a log2-bucketed histogram of region re-activation
	// distances (bucket i counts reuses at distance [2^i, 2^(i+1)) region
	// activations; the last bucket absorbs the tail) — the internal
	// temporal-correlation signal the paper characterizes.
	ReuseHistogram [16]uint64 `json:"reuse_histogram"`
}

// Introspector is implemented by prefetchers that can characterize their
// learned state for telemetry. The simulator binds it once at
// construction, like the eviction and bandwidth hooks, and queries it
// only after the run — never on the hot path.
type Introspector interface {
	Introspect() Introspection
}

// Nil is the no-prefetching baseline.
type Nil struct{}

// Name implements Prefetcher.
func (Nil) Name() string { return "none" }

// Train implements Prefetcher.
func (Nil) Train(Access, IssueFunc) {}

// EvictNotify implements Prefetcher.
func (Nil) EvictNotify(uint64) {}
