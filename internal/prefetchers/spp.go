package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// SPPPPF is SPP [Kim et al., MICRO 2016] with PPF-style prefetch filtering
// [Bhatia et al., ISCA 2019]: signature-indexed delta prediction with
// multiplicative path confidence lookahead, plus a usefulness-trained
// filter that suppresses feature combinations whose prefetches keep
// getting evicted untouched.
//
// Simplification vs the full PPF: the original uses a multi-feature
// perceptron; this implementation trains a single hashed-feature weight
// table (signature ⊕ delta) from the same positive (prefetch touched) and
// negative (prefetched line evicted untouched) events. The feedback loop
// and its effect on accuracy are preserved; the exact feature set is not.
type SPPPPF struct {
	st *prefetch.Table[sppSTEntry] // per-page signature tracking
	pt []sppPTSet                  // signature → delta candidates

	// filter weights, indexed by hashed (signature, delta).
	weights []int8
	// recentIssues maps recently issued vlines to their feature hash so
	// eviction/touch feedback can credit the right weight.
	recentIssues map[uint64]uint32

	l1Conf float64
	l2Conf float64
	depth  int
}

type sppSTEntry struct {
	lastOffset int16
	sig        uint16
}

type sppPTSet struct {
	deltas [4]int16
	counts [4]uint8
	total  uint8
}

// NewSPPPPF builds the prefetcher at the configuration used in the paper
// (same as [Bhatia et al.]; Table IV reports 39.3KB).
func NewSPPPPF() *SPPPPF {
	return &SPPPPF{
		st:           prefetch.NewTable[sppSTEntry](64, 4),
		pt:           make([]sppPTSet, 2048),
		weights:      make([]int8, 4096),
		recentIssues: make(map[uint64]uint32),
		l1Conf:       0.55,
		l2Conf:       0.25,
		depth:        6,
	}
}

// Name implements prefetch.Prefetcher.
func (*SPPPPF) Name() string { return "SPP-PPF" }

func sppSigUpdate(sig uint16, delta int16) uint16 {
	return (sig<<3 ^ uint16(delta)&0x3f) & 0x7ff
}

func (p *SPPPPF) feature(sig uint16, delta int16) uint32 {
	return (uint32(sig)*31 ^ uint32(uint16(delta))*131) & 4095
}

// Train implements prefetch.Prefetcher.
func (p *SPPPPF) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	page := mem.PageNum(mem.Addr(a.VAddr))
	off := int16(mem.BlockOffset(mem.Addr(a.VAddr)))

	// Usefulness feedback: a demanded line we recently prefetched is a
	// positive example.
	vline := a.VAddr &^ (mem.LineSize - 1)
	if f, ok := p.recentIssues[vline]; ok {
		if p.weights[f] < 16 {
			p.weights[f]++
		}
		delete(p.recentIssues, vline)
	}

	set := p.st.SetIndex(page)
	e, ok := p.st.Lookup(set, page)
	if !ok {
		p.st.Insert(set, page, sppSTEntry{lastOffset: off})
		return
	}
	delta := off - e.lastOffset
	if delta == 0 {
		return
	}
	// Learn delta under the old signature.
	p.learnDelta(e.sig, delta)
	e.sig = sppSigUpdate(e.sig, delta)
	e.lastOffset = off

	// Lookahead from the updated signature.
	sig, cur, conf := e.sig, off, 1.0
	for d := 0; d < p.depth; d++ {
		best, bestConf := int16(0), 0.0
		ps := &p.pt[sig&2047]
		if ps.total == 0 {
			break
		}
		for i, cnt := range ps.counts {
			if cnt == 0 {
				continue
			}
			c := float64(cnt) / float64(ps.total)
			if c > bestConf {
				best, bestConf = ps.deltas[i], c
			}
		}
		if best == 0 {
			break
		}
		conf *= bestConf * 0.95
		cur += best
		if cur < 0 || cur >= mem.BlocksPerPage || conf < p.l2Conf {
			break // SPP stays within the page at L1 placement
		}
		level := prefetch.LevelL2
		if conf >= p.l1Conf {
			level = prefetch.LevelL1
		}
		f := p.feature(sig, best)
		if p.weights[f] <= -4 {
			// PPF reject: this feature keeps producing useless prefetches.
			sig = sppSigUpdate(sig, best)
			continue
		}
		target := uint64(mem.BlockAddr(page, int(cur)))
		p.rememberIssue(target, f)
		issue(prefetch.Request{VLine: target, Level: level})
		sig = sppSigUpdate(sig, best)
	}
}

func (p *SPPPPF) learnDelta(sig uint16, delta int16) {
	ps := &p.pt[sig&2047]
	if ps.total >= 250 {
		for i := range ps.counts {
			ps.counts[i] /= 2
		}
		ps.total /= 2
	}
	for i, d := range ps.deltas {
		if d == delta {
			ps.counts[i]++
			ps.total++
			return
		}
	}
	// Replace the weakest slot.
	weakest := 0
	for i := range ps.counts {
		if ps.counts[i] < ps.counts[weakest] {
			weakest = i
		}
	}
	ps.total -= ps.counts[weakest]
	ps.deltas[weakest] = delta
	ps.counts[weakest] = 1
	ps.total++
}

func (p *SPPPPF) rememberIssue(vline uint64, f uint32) {
	if len(p.recentIssues) > 512 {
		// Bounded: drop an arbitrary entry (hardware would age a queue).
		for k := range p.recentIssues {
			delete(p.recentIssues, k)
			break
		}
	}
	p.recentIssues[vline] = f
}

// EvictNotify implements prefetch.Prefetcher.
func (*SPPPPF) EvictNotify(uint64) {}

// EvictDetail implements prefetch.EvictObserver: untouched prefetched
// victims are negative training examples.
func (p *SPPPPF) EvictDetail(vline uint64, wasUselessPrefetch bool) {
	if !wasUselessPrefetch {
		return
	}
	if f, ok := p.recentIssues[vline]; ok {
		if p.weights[f] > -16 {
			p.weights[f]--
		}
		delete(p.recentIssues, vline)
	}
}

// StorageBytes reproduces Table IV's 39.3KB SPP-PPF budget.
func (p *SPPPPF) StorageBytes() float64 { return 39.3 * 1024 }

var (
	_ prefetch.Prefetcher    = (*SPPPPF)(nil)
	_ prefetch.EvictObserver = (*SPPPPF)(nil)
)
