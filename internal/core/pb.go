package core

import (
	"math/bits"

	"repro/internal/prefetch"
)

// pbState is the per-offset state in the Prefetch Buffer: four states per
// offset as in Table I (No Prefetch, Prefetch to L1D, to L2C; LLC unused).
type pbState uint8

const (
	pbNone pbState = iota
	pbL2
	pbL1
)

// prefetchBuffer is Gaze's PB: up to N regions, each with a per-offset
// prefetch pattern. It smooths issuance (a bounded number of requests
// drain per training event) and merges aggressiveness promotions into
// still-pending patterns (Fig 3b, lower part).
//
// Storage is a fixed ring of entries whose state slices are allocated
// once at construction and recycled: the training hot path never
// allocates, matching the bounded buffering of the hardware structure.
type prefetchBuffer struct {
	entries []pbEntry // ring storage; len(entries) is the capacity
	head    int       // ring position of the oldest entry
	count   int
	blocks  int
	// index maps region -> ring position so merge (called once per
	// predicted offset) finds its entry in O(1) instead of scanning the
	// ring.
	index prefetch.RegionIndex
}

type pbEntry struct {
	region uint64
	states []pbState
	// occupied marks offsets with a pending state, one bit per block, so
	// drain walks set bits instead of scanning the whole states array.
	occupied []uint64
	pending  int
}

func newPrefetchBuffer(capacity, blocks int) *prefetchBuffer {
	pb := &prefetchBuffer{
		entries: make([]pbEntry, capacity),
		blocks:  blocks,
		index:   prefetch.NewRegionIndex(capacity),
	}
	words := (blocks + 63) / 64
	for i := range pb.entries {
		pb.entries[i].states = make([]pbState, blocks)
		pb.entries[i].occupied = make([]uint64, words)
	}
	return pb
}

// slot returns the ring position of the i-th oldest entry.
func (pb *prefetchBuffer) slot(i int) int {
	s := pb.head + i
	if s >= len(pb.entries) {
		s -= len(pb.entries)
	}
	return s
}

func (pb *prefetchBuffer) find(region uint64) *pbEntry {
	if s := pb.index.Lookup(region); s >= 0 {
		return &pb.entries[s]
	}
	return nil
}

// merge records a desired prefetch state for one offset of a region,
// keeping the more aggressive of the existing and new states (promotion
// can upgrade L2 to L1, never downgrade).
func (pb *prefetchBuffer) merge(region uint64, off int, st pbState) {
	if st == pbNone || off < 0 || off >= pb.blocks {
		return
	}
	e := pb.find(region)
	if e == nil {
		if pb.count >= len(pb.entries) {
			// FIFO eviction: the oldest entry's remaining requests are lost
			// (bounded buffering, as in hardware).
			pb.index.Remove(pb.entries[pb.head].region)
			pb.head = pb.slot(1)
			pb.count--
		}
		s := pb.slot(pb.count)
		e = &pb.entries[s]
		pb.count++
		e.region = region
		e.pending = 0
		clear(e.states)
		clear(e.occupied)
		pb.index.Insert(region, s)
	}
	if st > e.states[off] {
		if e.states[off] == pbNone {
			e.pending++
			e.occupied[off>>6] |= 1 << (uint(off) & 63)
		}
		e.states[off] = st
	}
}

// drain emits up to max pending requests, oldest region first, in offset
// order, clearing what it emits.
func (pb *prefetchBuffer) drain(max int, regionShift uint, issue prefetch.IssueFunc) {
	emitted := 0
	for i := 0; i < pb.count && emitted < max; i++ {
		e := &pb.entries[pb.slot(i)]
		for w := 0; w < len(e.occupied) && emitted < max; w++ {
			for e.occupied[w] != 0 && emitted < max {
				b := bits.TrailingZeros64(e.occupied[w])
				off := w<<6 + b
				st := e.states[off]
				level := prefetch.LevelL1
				if st == pbL2 {
					level = prefetch.LevelL2
				}
				issue(prefetch.Request{
					VLine: e.region<<regionShift + uint64(off)<<6,
					Level: level,
				})
				e.occupied[w] &^= 1 << uint(b)
				e.states[off] = pbNone
				e.pending--
				emitted++
			}
		}
	}
	// Compact fully-drained entries from the front.
	for pb.count > 0 && pb.entries[pb.head].pending == 0 {
		pb.index.Remove(pb.entries[pb.head].region)
		pb.head = pb.slot(1)
		pb.count--
	}
}

// len returns the number of buffered regions.
func (pb *prefetchBuffer) len() int { return pb.count }
