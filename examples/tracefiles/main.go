// Tracefiles: round-trip a workload through the binary trace format —
// generate, write, re-read, and simulate from the file — demonstrating the
// trace tooling a user needs to plug in their own captured traces.
//
//	go run ./examples/tracefiles
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const name = "leslie3d-134"
	const n = 100_000

	dir, err := os.MkdirTemp("", "gaze-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, name+".gztr")

	// 1. Generate and write.
	recs, err := workload.Generate(name, n)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records to %s (%.1f bytes/record)\n",
		n, path, float64(info.Size())/float64(n))

	// 2. Re-read the file.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	fr, err := trace.NewFileReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.Collect(fr, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-read %d records; first = {PC:%#x Addr:%#x}\n",
		len(loaded), loaded[0].PC, loaded[0].Addr)

	// 3. Simulate from the file contents.
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 50_000
	cfg.SimInstructions = 200_000
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(loaded)),
		L1Prefetcher: core.NewDefault(),
	}})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run()
	fmt.Printf("simulated from file: IPC %.3f, accuracy %.1f%%, coverage %.1f%%\n",
		res.MeanIPC(), 100*res.Accuracy(), 100*res.Coverage())
}
