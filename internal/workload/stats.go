package workload

import (
	"math/bits"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// FootprintStats summarizes the spatial-region structure of a trace —
// the numbers behind the paper's §III-C observation that streaming
// footprints are extremely dense while interleaved irregular footprints
// are nearly empty.
// The JSON tags are part of the traceset registry's manifest schema.
type FootprintStats struct {
	// Regions is the number of distinct 4KB regions touched.
	Regions int `json:"regions"`
	// SingleBlock counts regions whose footprint has exactly one block
	// (what the Filter Table exists to discard).
	SingleBlock int `json:"single_block"`
	// Dense counts fully-dense regions (all 64 blocks touched).
	Dense int `json:"dense"`
	// MeanDensity is the average touched-block count per region.
	MeanDensity float64 `json:"mean_density"`
	// DensityHistogram buckets regions by footprint popcount:
	// [1], [2-8], [9-32], [33-63], [64].
	DensityHistogram [5]int `json:"density_histogram"`
	// TriggerAmbiguity is the mean number of distinct observed footprints
	// per trigger offset (>1 means the trigger offset alone cannot
	// identify the pattern — the weakness of Offset/PMP keying).
	TriggerAmbiguity float64 `json:"trigger_ambiguity"`
	// Loads is the number of load records inspected.
	Loads int `json:"loads"`
}

// AnalyzeFootprints replays records and reconstructs per-region footprints
// plus first-two-access ordering statistics.
func AnalyzeFootprints(recs []trace.Record) FootprintStats {
	type regionInfo struct {
		bits    uint64
		trigger int
		second  int
		count   int
	}
	regions := make(map[uint64]*regionInfo)
	for _, r := range recs {
		if r.Kind != trace.Load {
			continue
		}
		page := mem.PageNum(mem.Addr(r.Addr))
		off := mem.BlockOffset(mem.Addr(r.Addr))
		ri := regions[page]
		if ri == nil {
			ri = &regionInfo{trigger: off, second: -1}
			regions[page] = ri
		}
		if ri.bits&(1<<uint(off)) == 0 && ri.count == 1 && off != ri.trigger {
			ri.second = off
		}
		if ri.bits&(1<<uint(off)) == 0 {
			ri.count++
		}
		ri.bits |= 1 << uint(off)
	}

	var st FootprintStats
	for _, r := range recs {
		if r.Kind == trace.Load {
			st.Loads++
		}
	}
	st.Regions = len(regions)
	if st.Regions == 0 {
		return st
	}
	totalDensity := 0
	// footprintsPerTrigger collects distinct footprints per trigger offset.
	footprintsPerTrigger := make(map[int]map[uint64]bool)
	for _, ri := range regions {
		d := bits.OnesCount64(ri.bits)
		totalDensity += d
		switch {
		case d == 1:
			st.SingleBlock++
			st.DensityHistogram[0]++
		case d <= 8:
			st.DensityHistogram[1]++
		case d <= 32:
			st.DensityHistogram[2]++
		case d <= 63:
			st.DensityHistogram[3]++
		default:
			st.Dense++
			st.DensityHistogram[4]++
		}
		m := footprintsPerTrigger[ri.trigger]
		if m == nil {
			m = make(map[uint64]bool)
			footprintsPerTrigger[ri.trigger] = m
		}
		m[ri.bits] = true
	}
	st.MeanDensity = float64(totalDensity) / float64(st.Regions)
	if len(footprintsPerTrigger) > 0 {
		total := 0
		for _, m := range footprintsPerTrigger {
			total += len(m)
		}
		st.TriggerAmbiguity = float64(total) / float64(len(footprintsPerTrigger))
	}
	return st
}

// TopPCs returns the most frequent load PCs in a trace with their shares,
// a quick profile of code-footprint concentration.
func TopPCs(recs []trace.Record, k int) []PCShare {
	counts := make(map[uint64]int)
	loads := 0
	for _, r := range recs {
		if r.Kind == trace.Load {
			counts[r.PC]++
			loads++
		}
	}
	out := make([]PCShare, 0, len(counts))
	for pc, c := range counts {
		out = append(out, PCShare{PC: pc, Share: float64(c) / float64(loads)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// PCShare pairs a load PC with its share of all loads.
type PCShare struct {
	PC    uint64
	Share float64
}
