package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// statsSchemaV5 is the golden top-level field set of the /stats document
// at stats_schema_version 5 (v2 added "cluster"; v3 added
// "trace_cache_mapped_bytes"; v4 added "obs"; v5 added "telemetry").
// Changing StatsResponse without bumping StatsSchemaVersion — or bumping
// without updating this list — fails here. Keep the list sorted.
var statsSchemaV5 = []string{
	"cluster",
	"counters",
	"ingested_traces",
	"jobs",
	"obs",
	"scale",
	"stats_schema_version",
	"store_dir",
	"store_entries",
	"store_gc",
	"store_schema_version",
	"telemetry",
	"trace_cache_bytes",
	"trace_cache_entries",
	"trace_cache_evictions",
	"trace_cache_hits",
	"trace_cache_mapped_bytes",
	"trace_cache_misses",
	"trace_registry_dir",
}

func TestStatsSchemaGolden(t *testing.T) {
	if StatsSchemaVersion != 5 {
		t.Fatalf("StatsSchemaVersion = %d: update statsSchemaV5 (or add a v%d golden) to match the new shape",
			StatsSchemaVersion, StatsSchemaVersion)
	}

	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	var version int
	if err := json.Unmarshal(doc["stats_schema_version"], &version); err != nil || version != StatsSchemaVersion {
		t.Fatalf("stats_schema_version = %s, want %d", doc["stats_schema_version"], StatsSchemaVersion)
	}

	// The served field set must be exactly the golden set. omitempty
	// fields (store_dir, trace_registry_dir) may be absent at runtime, so
	// compare against the struct's full tag set and separately confirm
	// nothing served is outside it.
	var tags []string
	rt := reflect.TypeOf(StatsResponse{})
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if tag != "" {
			if idx := strings.IndexByte(tag, ','); idx >= 0 {
				tag = tag[:idx]
			}
			tags = append(tags, tag)
		}
	}
	sort.Strings(tags)
	if !reflect.DeepEqual(tags, statsSchemaV5) {
		t.Errorf("StatsResponse fields changed without a schema bump:\n got  %v\n want %v", tags, statsSchemaV5)
	}
	golden := make(map[string]bool, len(statsSchemaV5))
	for _, k := range statsSchemaV5 {
		golden[k] = true
	}
	for k := range doc {
		if !golden[k] {
			t.Errorf("served /stats field %q not in the v%d golden set", k, StatsSchemaVersion)
		}
	}
}
