package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// IPCP [Pakalapati & Panda, ISCA 2020] classifies each instruction pointer
// into Constant Stride (CS), Complex Stride (CPLX, signature-predicted) or
// Global Stream (GS) and prefetches per class. Configuration per Table IV:
// 64-entry IP table, 128-entry CSPT.
type IPCP struct {
	ipt  *prefetch.Table[ipcpEntry]
	cspt []csptEntry

	// Global-stream detector: recent line numbers in a small window.
	recent     [32]int64
	recentPos  int
	streamHits int
}

type ipcpEntry struct {
	lastLine int64
	stride   int64
	confCS   int8
	sig      uint16
	// streamScore tracks how often this IP rides the global stream.
	streamScore int8
}

type csptEntry struct {
	stride int64
	conf   int8
}

// NewIPCP builds IPCP at Table IV's design point.
func NewIPCP() *IPCP {
	return &IPCP{
		ipt:  prefetch.NewTable[ipcpEntry](16, 4),
		cspt: make([]csptEntry, 128),
	}
}

// Name implements prefetch.Prefetcher.
func (*IPCP) Name() string { return "IPCP-L1" }

// Train implements prefetch.Prefetcher.
func (p *IPCP) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := int64(a.VAddr >> mem.LineBits)
	p.updateGlobalStream(line)

	set := p.ipt.SetIndex(a.PC >> 2)
	e, ok := p.ipt.Lookup(set, a.PC)
	if !ok {
		p.ipt.Insert(set, a.PC, ipcpEntry{lastLine: line})
		return
	}
	stride := line - e.lastLine
	if stride != 0 {
		// CS class learning.
		if stride == e.stride {
			if e.confCS < 3 {
				e.confCS++
			}
		} else {
			if e.confCS > 0 {
				e.confCS--
			}
			if e.confCS == 0 {
				e.stride = stride
			}
		}
		// CPLX signature learning: previous signature predicts this stride.
		ce := &p.cspt[e.sig&127]
		if ce.stride == stride {
			if ce.conf < 3 {
				ce.conf++
			}
		} else {
			if ce.conf > 0 {
				ce.conf--
			}
			if ce.conf == 0 {
				ce.stride = stride
			}
		}
		e.sig = (e.sig<<3 ^ uint16(stride&0x3f)) & 0x3ff
	}
	// GS classification: this IP touched the global stream.
	if p.streamHits > 24 {
		if e.streamScore < 3 {
			e.streamScore++
		}
	} else if e.streamScore > 0 {
		e.streamScore--
	}
	e.lastLine = line

	// Issue per class priority: GS > CS > CPLX (as in IPCP's selector).
	switch {
	case e.streamScore >= 2:
		for d := int64(1); d <= 4; d++ {
			issue(prefetch.Request{VLine: uint64(line+d) << mem.LineBits, Level: prefetch.LevelL1})
		}
	case e.confCS >= 2 && e.stride != 0:
		for d := int64(1); d <= 2; d++ {
			t := line + d*e.stride
			if t > 0 {
				issue(prefetch.Request{VLine: uint64(t) << mem.LineBits, Level: prefetch.LevelL1})
			}
		}
	default:
		// CPLX chain: walk the signature table up to depth 3.
		sig, cur := e.sig, line
		for depth := 0; depth < 3; depth++ {
			ce := p.cspt[sig&127]
			if ce.conf < 2 || ce.stride == 0 {
				break
			}
			cur += ce.stride
			if cur <= 0 {
				break
			}
			issue(prefetch.Request{VLine: uint64(cur) << mem.LineBits, Level: prefetch.LevelL1})
			sig = (sig<<3 ^ uint16(ce.stride&0x3f)) & 0x3ff
		}
	}
}

// updateGlobalStream maintains the dense-window detector.
func (p *IPCP) updateGlobalStream(line int64) {
	hits := 0
	for _, prev := range p.recent {
		d := line - prev
		if d >= -2 && d <= 2 && d != 0 {
			hits++
		}
	}
	p.streamHits = p.streamHits - p.streamHits/8 + hits
	p.recent[p.recentPos] = line
	p.recentPos = (p.recentPos + 1) & 31
}

// EvictNotify implements prefetch.Prefetcher.
func (*IPCP) EvictNotify(uint64) {}

// StorageBytes reproduces Table IV's 0.7KB IPCP budget.
func (p *IPCP) StorageBytes() float64 { return 0.7 * 1024 }

var _ prefetch.Prefetcher = (*IPCP)(nil)
