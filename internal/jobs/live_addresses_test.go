package jobs

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// TestLiveAddresses pins the manager's GC ref source: while a job is
// queued or running, every engine-job address its plan will touch is
// reported live; once the job reaches a terminal state its addresses
// drop out. Result-store GC builds its protected set from this, so
// over-reporting merely delays reclamation but under-reporting would let
// the collector delete results queued work is about to read.
func TestLiveAddresses(t *testing.T) {
	gate := make(chan struct{})
	eng := engine.New(engine.Options{Scale: tiny})
	base := testCompiler(eng)
	m := newManager(t, Options{
		Engine:  eng,
		Workers: 1,
		Compile: func(spec Spec) (*Plan, error) {
			plan, err := base(spec)
			if err != nil {
				return nil, err
			}
			inner := plan.Finalize
			plan.Finalize = func(results []sim.Result) any {
				<-gate
				return inner(results)
			}
			return plan, nil
		},
	})

	if live := m.LiveAddresses(); len(live) != 0 {
		t.Fatalf("idle manager reports live addresses: %v", live)
	}

	// First job occupies the lone worker (held at Finalize); the second
	// waits queued behind it. Both must report their plans' addresses.
	running, _, err := m.Submit(fanSpec("Gaze", 2, Normal))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, Running)
	queued, _, err := m.Submit(fanSpec("IP-stride", 2, Normal))
	if err != nil {
		t.Fatal(err)
	}

	scale := eng.Scale()
	wantAddrs := func(pf string) []string {
		var out []string
		for i := 0; i < 2; i++ {
			j := engine.Job{
				Traces:    []string{"lbm-1274"},
				L1:        []string{pf},
				Overrides: engine.Overrides{PQCapacity: 8 + i},
			}
			out = append(out, j.ContentAddress(scale))
		}
		return out
	}

	live := m.LiveAddresses()
	for _, pf := range []string{"Gaze", "IP-stride"} {
		for _, addr := range wantAddrs(pf) {
			if !live[addr] {
				t.Errorf("address %s of a non-terminal %s job not reported live", addr, pf)
			}
		}
	}

	close(gate)
	waitState(t, m, running.ID, Succeeded)
	waitState(t, m, queued.ID, Succeeded)
	if live := m.LiveAddresses(); len(live) != 0 {
		t.Fatalf("terminal jobs still report live addresses: %v", live)
	}
}
