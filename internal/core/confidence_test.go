package core

import (
	"testing"

	"repro/internal/mem"
)

// TestConfidenceControlRejectsUnstablePatterns drives a (trigger, second)
// key whose tail footprint changes on every recurrence: with the
// extension on, Gaze learns to stop predicting it.
func TestConfidenceControlRejectsUnstablePatterns(t *testing.T) {
	g := NewWithConfidence()
	c := &collect{}
	// Same first two accesses, completely different tails each time:
	// similarity stays low, confidence decays 1 → 0.
	tails := [][]int{{20, 30, 40}, {21, 31, 41}, {22, 32, 42}, {23, 33, 43}, {24, 34, 44}}
	for i, tail := range tails {
		page := uint64(0x1000 + i)
		order := append([]int{5, 9}, tail...)
		runRegion(g, c, 0x100, page, order)
		g.EvictNotify(page * mem.PageSize)
	}
	// New region with the matching start: the pattern must be rejected.
	before := g.InternalStats().ConfidenceRejects
	c2 := &collect{}
	access(g, c2, 0x100, 0x2000, 5)
	access(g, c2, 0x100, 0x2000, 9)
	drainAll(g, c2)
	if g.InternalStats().ConfidenceRejects != before+1 {
		t.Errorf("ConfidenceRejects = %d, want %d",
			g.InternalStats().ConfidenceRejects, before+1)
	}
	for line := range c2.lines() {
		if mem.PageNum(mem.Addr(line)) == 0x2000 {
			t.Errorf("rejected pattern still prefetched line %#x", line)
		}
	}
}

// TestConfidenceControlKeepsStablePatterns: a perfectly recurring pattern
// must keep full confidence and keep predicting.
func TestConfidenceControlKeepsStablePatterns(t *testing.T) {
	g := NewWithConfidence()
	c := &collect{}
	order := []int{5, 9, 20, 30, 40}
	for i := 0; i < 6; i++ {
		page := uint64(0x3000 + i)
		runRegion(g, c, 0x100, page, order)
		g.EvictNotify(page * mem.PageSize)
	}
	c2 := &collect{}
	access(g, c2, 0x100, 0x4000, 5)
	access(g, c2, 0x100, 0x4000, 9)
	drainAll(g, c2)
	base := uint64(0x4000) * mem.PageSize
	for _, off := range []int{20, 30, 40} {
		if _, ok := c2.lines()[base+uint64(off)*mem.LineSize]; !ok {
			t.Errorf("stable pattern block %d not prefetched", off)
		}
	}
	if g.InternalStats().ConfidenceRejects != 0 {
		t.Errorf("stable pattern rejected %d times", g.InternalStats().ConfidenceRejects)
	}
}

// TestConfidenceRecovers: after rejection, a pattern that stabilizes
// regains confidence and predicts again.
func TestConfidenceRecovers(t *testing.T) {
	g := NewWithConfidence()
	c := &collect{}
	// Destabilize.
	for i := 0; i < 4; i++ {
		page := uint64(0x5000 + i)
		runRegion(g, c, 0x100, page, []int{5, 9, 20 + i, 40 + i})
		g.EvictNotify(page * mem.PageSize)
	}
	// Stabilize: repeat one tail several times (confidence climbs back).
	for i := 0; i < 4; i++ {
		page := uint64(0x6000 + i)
		runRegion(g, c, 0x100, page, []int{5, 9, 50, 60})
		g.EvictNotify(page * mem.PageSize)
	}
	c2 := &collect{}
	access(g, c2, 0x100, 0x7000, 5)
	access(g, c2, 0x100, 0x7000, 9)
	drainAll(g, c2)
	base := uint64(0x7000) * mem.PageSize
	if _, ok := c2.lines()[base+50*mem.LineSize]; !ok {
		t.Error("recovered pattern not prefetched")
	}
}

func TestFootprintSimilarity(t *testing.T) {
	a, b := newBitvec(64), newBitvec(64)
	a.set(1)
	a.set(2)
	b.set(1)
	b.set(2)
	if s := footprintSimilarity(a, b); s != 1 {
		t.Errorf("identical similarity = %v", s)
	}
	b.set(3)
	b.set(4)
	if s := footprintSimilarity(a, b); s != 0.5 {
		t.Errorf("half similarity = %v", s)
	}
	empty := newBitvec(64)
	if s := footprintSimilarity(empty, empty); s != 1 {
		t.Errorf("empty similarity = %v", s)
	}
}

// TestConfidenceOffByDefault: the base design never rejects.
func TestConfidenceOffByDefault(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	for i := 0; i < 5; i++ {
		page := uint64(0x8000 + i)
		runRegion(g, c, 0x100, page, []int{5, 9, 20 + i})
		g.EvictNotify(page * mem.PageSize)
	}
	c2 := &collect{}
	access(g, c2, 0x100, 0x9000, 5)
	access(g, c2, 0x100, 0x9000, 9)
	drainAll(g, c2)
	if g.InternalStats().ConfidenceRejects != 0 {
		t.Error("base design rejected a pattern")
	}
	if g.InternalStats().PHTHits == 0 {
		t.Error("base design did not predict")
	}
}
