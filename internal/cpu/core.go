// Package cpu provides the out-of-order core timing model.
//
// The model is the classic trace-driven ROB-limited approximation used by
// analytical simulators: instructions fetch at FetchWidth per cycle, every
// instruction's completion time is fetch time plus its execution latency
// (memory latency for loads, ~0 for everything else), and instructions
// retire in order at RetireWidth per cycle. An instruction cannot fetch
// until the instruction ROBSize older than it has retired. The combination
// reproduces what matters for prefetcher studies: short L1 hits are fully
// hidden, independent misses overlap up to the ROB window (MLP), and long
// DRAM stalls serialize once the ROB fills behind them — so cutting miss
// latency via prefetching raises IPC exactly where ChampSim would show it.
package cpu

import "fmt"

// Config mirrors Table II's core row.
type Config struct {
	FetchWidth  int
	RetireWidth int
	ROBSize     int
}

// DefaultConfig is the paper's core: 4-wide OoO with a 352-entry ROB.
func DefaultConfig() Config {
	return Config{FetchWidth: 4, RetireWidth: 4, ROBSize: 352}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.RetireWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("cpu: widths and ROB size must be positive: %+v", c)
	}
	return nil
}

// Core tracks one hardware thread's timing state.
type Core struct {
	cfg        Config
	fetchStep  float64 // 1/FetchWidth
	retireStep float64 // 1/RetireWidth

	// retireRing holds the retire times of the last ROBSize instructions.
	retireRing []float64
	pos        int

	lastFetch  float64
	lastRetire float64

	instructions uint64

	// measureStartInstr / measureStartCycle snapshot the warm-up boundary.
	measureStartInstr uint64
	measureStartCycle float64
}

// New constructs a core; panics on invalid configuration.
func New(cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{
		cfg:        cfg,
		fetchStep:  1 / float64(cfg.FetchWidth),
		retireStep: 1 / float64(cfg.RetireWidth),
		retireRing: make([]float64, cfg.ROBSize),
	}
}

// NextFetch returns the cycle at which the next instruction will fetch.
// The multi-core scheduler advances the core with the smallest NextFetch.
func (c *Core) NextFetch() float64 {
	f := c.lastFetch + c.fetchStep
	if dep := c.retireRing[c.pos]; dep > f {
		// ROB full: cannot fetch until the instruction ROBSize back retires.
		f = dep
	}
	return f
}

// Execute advances the core by one instruction whose execution latency is
// lat cycles (0 for non-memory work) and returns its fetch cycle — the
// moment a load would have issued to the memory system.
func (c *Core) Execute(lat float64) float64 {
	fetch := c.NextFetch()
	c.ExecuteFetched(fetch, lat)
	return fetch
}

// ExecuteFetched is Execute for callers that already computed NextFetch
// and know the core is untouched since: the simulator's step fetches the
// cycle once to schedule work and reuses it here instead of re-deriving
// it from the ROB ring.
func (c *Core) ExecuteFetched(fetch, lat float64) {
	retire := fetch + lat
	if m := c.lastRetire + c.retireStep; m > retire {
		retire = m
	}
	c.retireRing[c.pos] = retire
	c.pos++
	if c.pos == len(c.retireRing) {
		c.pos = 0
	}
	c.lastFetch = fetch
	c.lastRetire = retire
	c.instructions++
}

// ExecuteRun advances the core by n back-to-back non-memory instructions.
// The loop keeps the ring state in locals — the per-record non-memory
// run is hot enough that the repeated field loads of n Execute calls
// show up in profiles.
func (c *Core) ExecuteRun(n int) {
	if n <= 0 {
		return
	}
	ring := c.retireRing
	pos := c.pos
	lastFetch, lastRetire := c.lastFetch, c.lastRetire
	for i := 0; i < n; i++ {
		fetch := lastFetch + c.fetchStep
		if dep := ring[pos]; dep > fetch {
			fetch = dep
		}
		retire := fetch
		if m := lastRetire + c.retireStep; m > retire {
			retire = m
		}
		ring[pos] = retire
		pos++
		if pos == len(ring) {
			pos = 0
		}
		lastFetch, lastRetire = fetch, retire
	}
	c.pos = pos
	c.lastFetch, c.lastRetire = lastFetch, lastRetire
	c.instructions += uint64(n)
}

// Instructions returns the total executed instruction count.
func (c *Core) Instructions() uint64 { return c.instructions }

// Now returns the current retirement frontier (the core's notion of time).
func (c *Core) Now() float64 { return c.lastRetire }

// BeginMeasurement marks the warm-up boundary: IPC reported by IPC() covers
// instructions executed after this call.
func (c *Core) BeginMeasurement() {
	c.measureStartInstr = c.instructions
	c.measureStartCycle = c.lastRetire
}

// MeasuredInstructions returns instructions executed since BeginMeasurement.
func (c *Core) MeasuredInstructions() uint64 {
	return c.instructions - c.measureStartInstr
}

// IPC returns instructions per cycle over the measurement window.
func (c *Core) IPC() float64 {
	cycles := c.lastRetire - c.measureStartCycle
	if cycles <= 0 {
		return 0
	}
	return float64(c.MeasuredInstructions()) / cycles
}

// Cycles returns elapsed cycles in the measurement window.
func (c *Core) Cycles() float64 { return c.lastRetire - c.measureStartCycle }
