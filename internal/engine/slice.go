// Time-sliced intra-trace execution (DESIGN.md §9). One engine job's
// trace is split into K contiguous slices of its measurement window, each
// simulated on its own goroutine with a warmup prefix — the records
// preceding the slice replayed un-measured to warm caches and prefetcher
// state — and the per-slice results merged deterministically into one
// document. Parallelism therefore no longer stops at the job boundary:
// one SPEC-scale ingested trace saturates every core.
//
// Everything here is defined over the *virtual* looped record stream the
// simulator consumes (a trace shorter than its budgets replays from the
// start): virtual index v maps to slab record v % n, and instruction
// positions are taken from the slab's prefix sums, so slice boundaries
// land on exact record boundaries and the union of the K measurement
// windows is record-for-record the serial run's window.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sliceWindow is one slice's replay plan: start the trace reader at slab
// record start, warm for exactly warmup instructions, then measure exactly
// sim instructions. Budgets are exact instruction sums of whole records,
// so the simulator's >=-threshold warmup/termination checks align the
// window on the planned record boundaries.
type sliceWindow struct {
	start  int
	warmup uint64
	sim    uint64
}

// planSlices partitions the measured window of a (warmup, simBudget) run
// over the looped slab into k contiguous slices by record count, and
// walks each slice's warmup prefix back up to warmup instructions,
// flooring at record 0 — the slice that starts at the trace's first
// record has no prefix at all. k is clamped to the measured record count.
// The plan is a pure function of (slab contents, warmup, simBudget, k).
func planSlices(slab trace.Records, warmup, simBudget uint64, k int) []sliceWindow {
	n := slab.Len()
	if n == 0 || simBudget == 0 {
		return nil
	}
	// Prefix instruction sums over the slab; cum is strictly increasing
	// (every record is at least one instruction), which the boundary
	// searches below rely on.
	cum := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + uint64(slab.At(i).Instructions())
	}
	total := cum[n]
	un := uint64(n)

	// cumV extends cum to the virtual looped stream: instructions executed
	// by the first v virtual records.
	cumV := func(v uint64) uint64 { return v/un*total + cum[v%un] }
	// findGE returns the smallest v with cumV(v) >= target.
	findGE := func(target uint64) uint64 {
		if target == 0 {
			return 0
		}
		wraps := (target - 1) / total
		rem := target - wraps*total // in [1, total]
		j := sort.Search(n+1, func(j int) bool { return cum[j] >= rem })
		return wraps*un + uint64(j)
	}
	// findLE returns the largest v with cumV(v) <= target.
	findLE := func(target uint64) uint64 { return findGE(target+1) - 1 }

	// The serial run's measured window: measurement begins at the first
	// record once warmup instructions have retired and ends with the
	// record that crosses the sim budget.
	measStart := findGE(warmup)
	measEnd := findGE(cumV(measStart) + simBudget)
	m := measEnd - measStart
	if uint64(k) > m {
		k = int(m)
	}

	wins := make([]sliceWindow, k)
	for i := range wins {
		a := measStart + m*uint64(i)/uint64(k)
		b := measStart + m*uint64(i+1)/uint64(k)
		ca := cumV(a)
		w := sliceWindow{sim: cumV(b) - ca}
		if ca <= warmup {
			// Within the first warmup's worth of the stream: the prefix
			// floors at record 0 (for slice 0 of a zero-warmup job that
			// means no prefix — measurement starts cold at record 0,
			// exactly like the serial run).
			w.warmup = ca
		} else {
			p := findLE(ca - warmup)
			w.start = int(p % un)
			w.warmup = ca - cumV(p)
		}
		wins[i] = w
	}
	return wins
}

// executeSliced runs a single-core job as k parallel time slices and
// merges their windows. Slice construction mirrors execute: same config,
// same prefetcher wiring, same translator salt — each slice is core 0 of
// its own single-core system, so no state is shared and the merged
// document depends only on the plan, never on scheduling.
func (e *Engine) executeSliced(ctx context.Context, j Job, k int) (sim.Result, *sim.Telemetry, error) {
	name := j.Traces[0]
	slab, err := e.materialize(ctx, name, j)
	if err != nil {
		return sim.Result{}, nil, err
	}
	cfg := j.Overrides.Apply(e.config(1))
	wins := planSlices(slab, cfg.WarmupInstructions, cfg.SimInstructions, k)
	if len(wins) == 0 {
		return sim.Result{}, nil, fmt.Errorf("engine: empty trace %q for sliced %s", name, j)
	}

	workers := e.sliceWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wins) {
		workers = len(wins)
	}
	parts := make([]sim.Result, len(wins))
	// Per-slice telemetry lands in slice order regardless of execution
	// order, so the concatenated timeline — like the merged result — is a
	// pure function of the plan.
	tels := make([]*sim.Telemetry, len(wins))
	sem := make(chan struct{}, workers)
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for i := range wins {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _, sliced := e.phase(ctx, "slice", obs.Int("slice", i))
			parts[i], tels[i] = e.runSlice(j, cfg, slab, wins[i])
			sliced()
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		// Re-raise on the calling goroutine, where engine.run's waiter
		// cleanup and the HTTP layer's recover can see it.
		panic(panicked)
	}
	_, _, merged := e.phase(ctx, "merge", obs.Int("slices", len(parts)))
	res := sim.MergeSlices(parts)
	tel := sim.ConcatSliceTelemetry(tels)
	merged()
	return res, tel, nil
}

// runSlice simulates one slice window as a standalone single-core system.
func (e *Engine) runSlice(j Job, cfg sim.Config, slab trace.Records, w sliceWindow) (sim.Result, *sim.Telemetry) {
	scfg := cfg
	scfg.WarmupInstructions = w.warmup
	scfg.SimInstructions = w.sim
	l1 := Broadcast(j.L1, 1)
	l2 := Broadcast(j.L2, 1)
	spec := sim.CoreSpec{
		Trace:        trace.NewLooping(trace.NewRecordsReaderAt(slab, w.start)),
		L1Prefetcher: prefetchers.MustNew(l1[0]),
	}
	if l2[0] != "" && l2[0] != "none" {
		spec.L2Prefetcher = prefetchers.MustNew(l2[0])
	}
	sys, err := sim.New(scfg, []sim.CoreSpec{spec})
	if err != nil {
		panic(fmt.Sprintf("engine: building sliced system for %s: %v", j, err))
	}
	res := sys.Run()
	return res, sys.Telemetry()
}
