// Request instrumentation and the trace-inspection endpoint.
//
// instrument is the outermost layer of Handler(): it opens one root span
// per request (joining an inbound traceparent when a downstream client
// or cluster peer sent one), renames the span to the matched route
// pattern after the mux has dispatched, observes the request duration in
// the per-route histogram, and optionally logs one structured line per
// request. GET /debug/traces serves the tracer's span ring buffer,
// newest first, filterable by trace ID or by job ID (resolved through
// the job's recorded trace).
package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// statusWriter captures the response status for the span attribute and
// the request log line. Flush forwards so streaming handlers (NDJSON
// job events) keep working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the route mux with per-request tracing, the
// per-route duration histogram, and optional request logging. With no
// tracer attached the span path is a nil no-op; the histogram always
// observes (it is how /metrics gets its HTTP family).
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if s.tracer != nil {
			ctx = obs.WithTracer(ctx, s.tracer)
			if sc, ok := obs.Extract(r.Header); ok {
				ctx = obs.WithRemoteParent(ctx, sc)
			}
		}
		ctx, span := obs.Start(ctx, "http "+r.Method)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		r = r.WithContext(ctx)
		mux.ServeHTTP(sw, r)
		// The mux sets r.Pattern during dispatch, so the route label is
		// only known now — rename the span and label the histogram with
		// the pattern ("GET /jobs/{id}"), never the raw path, to keep
		// label cardinality bounded.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		span.SetName("http " + route)
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
		dur := time.Since(start)
		s.metrics.HTTPDuration.Observe(route, dur.Seconds())
		if s.reqLog != nil {
			s.reqLog.InfoContext(ctx, "http request",
				"method", r.Method, "path", r.URL.Path, "route", route,
				"status", sw.status, "duration_ms", dur.Milliseconds())
		}
	})
}

// DebugTracesResponse is the GET /debug/traces document.
type DebugTracesResponse struct {
	// TraceID echoes the filter the spans were selected by (from ?trace=
	// or resolved from ?job=), empty for the unfiltered listing.
	TraceID string `json:"trace_id,omitempty"`
	// Spans are newest-first ring-buffer entries.
	Spans []obs.Span `json:"spans"`
}

// handleDebugTraces serves recent spans from the tracer's ring buffer.
// ?trace=<id> filters to one trace; ?job=<id> resolves the job's
// recorded trace ID first (404 for unknown jobs, 409 for jobs submitted
// while tracing was off); ?limit=<n> caps the span count.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		httpError(w, http.StatusServiceUnavailable, "tracing not enabled on this server")
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", v)
			return
		}
		limit = n
	}
	traceID := q.Get("trace")
	if jobID := q.Get("job"); jobID != "" {
		if !s.jobsEnabled(w) {
			return
		}
		rec, ok := s.jobs.Get(jobID)
		if !ok {
			httpError(w, http.StatusNotFound, "no job %q", jobID)
			return
		}
		if rec.TraceID == "" {
			httpError(w, http.StatusConflict, "job %q has no recorded trace", jobID)
			return
		}
		traceID = rec.TraceID
	}
	resp := DebugTracesResponse{TraceID: traceID, Spans: []obs.Span{}}
	if traceID == "" {
		resp.Spans = append(resp.Spans, s.tracer.Recent(limit)...)
	} else {
		for _, sp := range s.tracer.Recent(0) {
			if sp.TraceID != traceID {
				continue
			}
			resp.Spans = append(resp.Spans, sp)
			if limit > 0 && len(resp.Spans) == limit {
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
