package prefetch

// RegionIndex is a tiny open-addressed hash index from line or region
// addresses to small slot numbers, shared by the request-buffering
// structures (Queue, Pacer, Gaze's prefetch buffer) for O(1) duplicate
// detection. It is fixed-size (load factor <= 1/4), uses linear probing
// with backward-shift deletion, and never allocates after construction —
// the properties the simulation's allocation-free steady state needs.
// Keys are stored as key+1 so the zero word means "empty".
type RegionIndex struct {
	keys []uint64
	vals []int32
	mask uint64
}

// NewRegionIndex builds an index able to hold capacity entries.
func NewRegionIndex(capacity int) RegionIndex {
	size := 4
	for size < 4*capacity {
		size <<= 1
	}
	return RegionIndex{
		keys: make([]uint64, size),
		vals: make([]int32, size),
		mask: uint64(size - 1),
	}
}

// home is the preferred table position for a stored key (key+1).
func (x *RegionIndex) home(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> 32 & x.mask
}

// Lookup returns the slot stored for key, or -1.
func (x *RegionIndex) Lookup(key uint64) int {
	k := key + 1
	for i := x.home(k); ; i = (i + 1) & x.mask {
		switch x.keys[i] {
		case k:
			return int(x.vals[i])
		case 0:
			return -1
		}
	}
}

// Insert adds key -> slot; the caller guarantees key is absent and that
// the table has room (entries <= capacity <= size/4).
func (x *RegionIndex) Insert(key uint64, slot int) {
	k := key + 1
	i := x.home(k)
	for x.keys[i] != 0 {
		i = (i + 1) & x.mask
	}
	x.keys[i] = k
	x.vals[i] = int32(slot)
}

// Remove deletes key using backward-shift deletion, keeping probe chains
// contiguous without tombstones.
func (x *RegionIndex) Remove(key uint64) {
	k := key + 1
	pos := -1
	for i := x.home(k); ; i = (i + 1) & x.mask {
		if x.keys[i] == k {
			pos = int(i)
			break
		}
		if x.keys[i] == 0 {
			return
		}
	}
	j := uint64(pos)
	for {
		x.keys[j] = 0
		prev := j
		for {
			j = (j + 1) & x.mask
			key := x.keys[j]
			if key == 0 {
				return
			}
			h := x.home(key)
			// The entry at j may backfill prev only if its home position
			// does not lie in the (prev, j] probe segment.
			if prev <= j {
				if h <= prev || h > j {
					break
				}
			} else if h <= prev && h > j {
				break
			}
		}
		x.keys[prev] = x.keys[j]
		x.vals[prev] = x.vals[j]
	}
}

// Clear empties the index.
func (x *RegionIndex) Clear() { clear(x.keys) }
