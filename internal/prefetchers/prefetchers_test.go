package prefetchers

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

type sink struct{ reqs []prefetch.Request }

func (s *sink) issue(r prefetch.Request) { s.reqs = append(s.reqs, r) }

func (s *sink) has(vline uint64) bool {
	for _, r := range s.reqs {
		if r.VLine == vline {
			return true
		}
	}
	return false
}

func feed(p prefetch.Prefetcher, s *sink, pc, addr uint64) {
	p.Train(prefetch.Access{PC: pc, VAddr: addr}, s.issue)
}

func TestIPStrideLearnsConstantStride(t *testing.T) {
	p := NewIPStride(2)
	s := &sink{}
	base := uint64(0x100000)
	for i := uint64(0); i < 8; i++ {
		feed(p, s, 0x400, base+i*128) // stride 2 lines
	}
	// After confidence builds, next targets are +2 and +4 lines.
	last := base + 7*128
	if !s.has(last&^63+2*64) || !s.has(last&^63+4*64) {
		t.Errorf("stride-2 targets missing; issued %d reqs", len(s.reqs))
	}
}

func TestIPStrideIgnoresRandom(t *testing.T) {
	p := NewIPStride(2)
	s := &sink{}
	x := uint64(12345)
	for i := 0; i < 100; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		feed(p, s, 0x400, 0x100000+(x%(1<<20))&^63)
	}
	if len(s.reqs) > 20 {
		t.Errorf("random stream produced %d stride prefetches", len(s.reqs))
	}
}

// teachSpatial teaches a (pc, trigger-offset)-keyed footprint to a
// tracker-based prefetcher: touch pattern blocks on a page, then
// deactivate by evicting.
func teachSpatial(p prefetch.Prefetcher, s *sink, pc uint64, page uint64, offs []int) {
	for _, off := range offs {
		feed(p, s, pc, page*mem.PageSize+uint64(off)*mem.LineSize)
	}
	p.EvictNotify(page * mem.PageSize)
}

func TestSMSPredictsOnTrigger(t *testing.T) {
	p := NewSMS(DefaultSMSConfig())
	s := &sink{}
	// 2KB regions: offsets 0-31. Teach footprint {3, 7, 12}.
	teachSpatial(p, s, 0xabc, 0x1000, []int{3, 7, 12})
	teachSpatial(p, s, 0xabc, 0x1002, []int{3, 7, 12})

	s2 := &sink{}
	// New region, same PC, same trigger offset 3: predict {7, 12}.
	feed(p, s2, 0xabc, 0x2000*mem.PageSize+3*mem.LineSize)
	base := uint64(0x2000) * mem.PageSize
	if !s2.has(base+7*mem.LineSize) || !s2.has(base+12*mem.LineSize) {
		t.Errorf("SMS did not predict footprint; issued %v", s2.reqs)
	}
}

func TestSMSDistinguishesByPC(t *testing.T) {
	p := NewSMS(DefaultSMSConfig())
	s := &sink{}
	teachSpatial(p, s, 0x111, 0x1000, []int{3, 7, 12})
	teachSpatial(p, s, 0x222, 0x1002, []int{3, 20, 25})

	s2 := &sink{}
	feed(p, s2, 0x222, 0x3000*mem.PageSize+3*mem.LineSize)
	base := uint64(0x3000) * mem.PageSize
	if !s2.has(base + 20*mem.LineSize) {
		t.Error("SMS missed PC-specific pattern")
	}
	if s2.has(base + 7*mem.LineSize) {
		t.Error("SMS leaked pattern across PCs")
	}
}

func TestBingoLongEventPriority(t *testing.T) {
	p := NewBingo(DefaultBingoConfig())
	s := &sink{}
	// Same PC+offset, two different regions with different footprints:
	// revisiting region A must use A's exact pattern, not B's.
	teachSpatial(p, s, 0x500, 0xA000, []int{5, 9, 14})
	teachSpatial(p, s, 0x500, 0xB000, []int{5, 22, 28})

	s2 := &sink{}
	feed(p, s2, 0x500, 0xA000*mem.PageSize+5*mem.LineSize) // revisit A
	base := uint64(0xA000) * mem.PageSize
	if !s2.has(base + 9*mem.LineSize) {
		t.Error("Bingo exact match missed region A's own pattern")
	}
}

func TestBingoShortEventFallback(t *testing.T) {
	p := NewBingo(DefaultBingoConfig())
	s := &sink{}
	teachSpatial(p, s, 0x600, 0xC000, []int{4, 8, 16})

	s2 := &sink{}
	// Brand-new region (long event unseen) with same PC+offset: the short
	// event must still produce an approximate match.
	feed(p, s2, 0x600, 0xD000*mem.PageSize+4*mem.LineSize)
	base := uint64(0xD000) * mem.PageSize
	if !s2.has(base + 8*mem.LineSize) {
		t.Error("Bingo short-event fallback failed")
	}
}

func TestDSPatchDualPatterns(t *testing.T) {
	p := NewDSPatch()
	s := &sink{}
	// Footprints under one PC: {0,1,2} and {0,1,5}. CovP = {0,1,2,5},
	// AccP = {0,1}.
	teachSpatial(p, s, 0x700, 0xE000, []int{0, 1, 2})
	teachSpatial(p, s, 0x700, 0xE002, []int{0, 1, 5})

	// Low bandwidth pressure: coverage pattern (CovP).
	p.SetBandwidthProbe(func() float64 { return 0 })
	s2 := &sink{}
	feed(p, s2, 0x700, 0xF000*mem.PageSize)
	base := uint64(0xF000) * mem.PageSize
	if !s2.has(base+2*mem.LineSize) || !s2.has(base+5*mem.LineSize) {
		t.Errorf("CovP union missing blocks: %v", s2.reqs)
	}

	// High pressure: accuracy pattern (AccP) only.
	p.SetBandwidthProbe(func() float64 { return 5 })
	s3 := &sink{}
	feed(p, s3, 0x700, 0xF100*mem.PageSize)
	base = uint64(0xF100) * mem.PageSize
	if s3.has(base+2*mem.LineSize) || s3.has(base+5*mem.LineSize) {
		t.Errorf("AccP leaked union-only blocks under pressure: %v", s3.reqs)
	}
	if !s3.has(base + mem.LineSize) {
		t.Error("AccP intersection block missing")
	}
}

func TestPMPMergingAndThresholds(t *testing.T) {
	p := NewPMP()
	s := &sink{}
	// Merge 10 footprints at trigger 2: block 6 always follows (conf 1.0),
	// block 30 follows 20% of the time (conf 0.2 → L2 band).
	for i := 0; i < 10; i++ {
		offs := []int{2, 6}
		if i%5 == 0 {
			offs = append(offs, 30)
		}
		teachSpatial(p, s, 0x800, uint64(0x10000+i*2), offs)
	}
	s2 := &sink{}
	feed(p, s2, 0x801, 0x20000*mem.PageSize+2*mem.LineSize) // PC-independent
	base := uint64(0x20000) * mem.PageSize
	var l1, l2 bool
	for _, r := range s2.reqs {
		if r.VLine == base+6*mem.LineSize && r.Level == prefetch.LevelL1 {
			l1 = true
		}
		if r.VLine == base+30*mem.LineSize && r.Level == prefetch.LevelL2 {
			l2 = true
		}
	}
	if !l1 {
		t.Error("high-confidence block not prefetched to L1")
	}
	if !l2 {
		t.Error("mid-confidence block not prefetched to L2")
	}
}

func TestPMPPerOffsetKeying(t *testing.T) {
	p := NewPMP()
	s := &sink{}
	// Teach at trigger 10 with a +4 follower. The OPT holds one merged
	// counter vector per trigger offset, so the pattern fires on new
	// pages at trigger 10 but not at trigger 20.
	for i := 0; i < 6; i++ {
		teachSpatial(p, s, 0x900, uint64(0x30000+i*2), []int{10, 14})
	}
	s2 := &sink{}
	feed(p, s2, 0x900, 0x40000*mem.PageSize+10*mem.LineSize)
	base := uint64(0x40000) * mem.PageSize
	if !s2.has(base + 14*mem.LineSize) {
		t.Errorf("per-offset pattern did not fire on a new page: %v", s2.reqs)
	}
	s3 := &sink{}
	feed(p, s3, 0x900, 0x50000*mem.PageSize+20*mem.LineSize)
	if len(s3.reqs) != 0 {
		t.Errorf("pattern leaked across trigger offsets: %v", s3.reqs)
	}
}

func TestPMPIsTriggerAmbiguous(t *testing.T) {
	// Two families share trigger 0 with different followers; PMP merges
	// them and prefetches the union — the mischaracterization Gaze fixes.
	p := NewPMP()
	s := &sink{}
	for i := 0; i < 8; i++ {
		teachSpatial(p, s, 0xa00, uint64(0x50000+i*2), []int{0, 8})
		teachSpatial(p, s, 0xb00, uint64(0x51000+i*2), []int{0, 40})
	}
	s2 := &sink{}
	feed(p, s2, 0xa00, 0x60000*mem.PageSize)
	base := uint64(0x60000) * mem.PageSize
	if !s2.has(base+8*mem.LineSize) || !s2.has(base+40*mem.LineSize) {
		t.Skip("merge below threshold; acceptable")
	}
	// Both following blocks predicted: one of them is necessarily wrong
	// for whichever pattern this region actually is.
}

func TestIPCPStreamClass(t *testing.T) {
	p := NewIPCP()
	s := &sink{}
	base := uint64(0x200000)
	for i := uint64(0); i < 64; i++ {
		feed(p, s, 0x400, base+i*64)
	}
	if len(s.reqs) == 0 {
		t.Fatal("IPCP issued nothing on a dense stream")
	}
	// Final accesses must produce next-line-ahead requests.
	found := false
	last := base + 63*64
	for _, r := range s.reqs {
		if r.VLine > last {
			found = true
		}
	}
	if !found {
		t.Error("no ahead-of-stream prefetches")
	}
}

func TestSPPLookaheadDepth(t *testing.T) {
	p := NewSPPPPF()
	s := &sink{}
	page := uint64(0x300000) * mem.PageSize
	// Constant delta 2 within a page, repeated over pages to build
	// signature confidence.
	for pg := uint64(0); pg < 6; pg++ {
		for off := uint64(0); off < 30; off += 2 {
			feed(p, s, 0x500, page+pg*mem.PageSize+off*mem.LineSize)
		}
	}
	if len(s.reqs) == 0 {
		t.Fatal("SPP issued nothing on a delta-2 walk")
	}
	// Lookahead must reach multiple deltas ahead at least once.
	multi := false
	for _, r := range s.reqs {
		off := mem.BlockOffset(mem.Addr(r.VLine))
		if off >= 4 && off%2 == 0 {
			multi = true
		}
	}
	if !multi {
		t.Error("no lookahead targets")
	}
}

func TestSPPPPFNegativeFeedbackSuppresses(t *testing.T) {
	p := NewSPPPPF()
	s := &sink{}
	page := uint64(0x400000) * mem.PageSize
	countIssues := func() int {
		s2 := &sink{}
		for pg := uint64(100); pg < 104; pg++ {
			for off := uint64(0); off < 24; off += 3 {
				p.Train(prefetch.Access{PC: 0x600, VAddr: page + pg*mem.PageSize + off*mem.LineSize}, s2.issue)
			}
		}
		return len(s2.reqs)
	}
	// Build confidence.
	for pg := uint64(0); pg < 6; pg++ {
		for off := uint64(0); off < 24; off += 3 {
			feed(p, s, 0x600, page+pg*mem.PageSize+off*mem.LineSize)
		}
	}
	before := countIssues()
	if before == 0 {
		t.Skip("no baseline issues to suppress")
	}
	// Punish every issued line as useless.
	for _, r := range s.reqs {
		p.EvictDetail(r.VLine, true)
	}
	for i := 0; i < 40; i++ { // repeated punishment rounds
		s3 := &sink{}
		for off := uint64(0); off < 24; off += 3 {
			p.Train(prefetch.Access{PC: 0x600, VAddr: page + uint64(200+i)*mem.PageSize + off*mem.LineSize}, s3.issue)
		}
		for _, r := range s3.reqs {
			p.EvictDetail(r.VLine, true)
		}
	}
	after := countIssues()
	if after >= before {
		t.Errorf("negative feedback did not suppress: before=%d after=%d", before, after)
	}
}

func TestBertiLearnsTimelyDelta(t *testing.T) {
	p := NewBerti()
	s := &sink{}
	base := uint64(0x500000)
	cycle := 0.0
	// Stride-1 line walk with generous spacing: deltas are timely.
	for i := uint64(0); i < 120; i++ {
		p.Train(prefetch.Access{
			PC: 0x700, VAddr: base + i*64, Cycle: cycle, MissLatency: 100,
		}, s.issue)
		cycle += 50
	}
	if len(s.reqs) == 0 {
		t.Fatal("vBerti issued nothing on a steady stride")
	}
	// Elected deltas must reach multiple lines ahead (timeliness: one
	// 50-cycle step is not enough for a 100-cycle latency).
	ahead := false
	for _, r := range s.reqs {
		if int64(r.VLine>>6)-int64((base+119*64)>>6) >= 2 {
			ahead = true
		}
	}
	if !ahead {
		t.Log("warning: no deep deltas elected (acceptable but unexpected)")
	}
}

func TestBertiCrossPageBounded(t *testing.T) {
	p := NewBerti()
	s := &sink{}
	cycle := 0.0
	// Huge stride (16 pages): outside vBerti's 4-page window, never issued.
	for i := uint64(0); i < 100; i++ {
		p.Train(prefetch.Access{
			PC: 0x800, VAddr: 0x600000 + i*16*mem.PageSize, Cycle: cycle, MissLatency: 50,
		}, s.issue)
		cycle += 500
	}
	if len(s.reqs) != 0 {
		t.Errorf("vBerti issued %d cross-page requests beyond its window", len(s.reqs))
	}
}

func TestFactoryKnownNames(t *testing.T) {
	names := append(EvaluatedNames(),
		"none", "Gaze-PHT", "Offset", "PHT4SS", "SM4SS",
		"Gaze-1acc", "Gaze-2acc", "Gaze-3acc", "Gaze-4acc",
		"vGaze-8KB", "vGaze-64KB")
	for _, name := range names {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("New(%q) returned nil", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFactoryReturnsFreshState(t *testing.T) {
	a := MustNew("PMP")
	b := MustNew("PMP")
	if a == b {
		t.Error("factory shared prefetcher state")
	}
}

func TestStorageBytesTableIV(t *testing.T) {
	want := map[string]float64{
		"SMS":     116.6 * 1024,
		"Bingo":   138.6 * 1024,
		"DSPatch": 4.25 * 1024,
		"PMP":     5.0 * 1024,
		"IPCP-L1": 0.7 * 1024,
		"SPP-PPF": 39.3 * 1024,
		"vBerti":  2.55 * 1024,
	}
	for name, wantB := range want {
		p := MustNew(name)
		got, ok := StorageBytes(p)
		if !ok {
			t.Errorf("%s exposes no storage accounting", name)
			continue
		}
		if got != wantB {
			t.Errorf("%s storage = %.1fB, want %.1fB", name, got, wantB)
		}
	}
	// Gaze's budget comes from its Table I breakdown.
	g := MustNew("Gaze")
	got, ok := StorageBytes(g)
	if !ok || got < 4500 || got > 4650 {
		t.Errorf("Gaze storage = %v (ok=%v), want ~4571B", got, ok)
	}
}

func TestTrackerRotation(t *testing.T) {
	tr := newRegionTracker(4096, func(*trkAT) {})
	fp := uint64(0b1011)
	for k := 0; k < 64; k++ {
		if got := tr.rotl(tr.rotr(fp, k), k); got != fp {
			t.Fatalf("rot round-trip failed at k=%d: %#x", k, got)
		}
	}
	// Anchoring: bit at trigger lands at position 0.
	if tr.rotr(1<<10, 10)&1 != 1 {
		t.Error("rotr does not anchor trigger at bit 0")
	}
}

func TestTrackerFiltersOneBit(t *testing.T) {
	learned := 0
	tr := newRegionTracker(4096, func(*trkAT) { learned++ })
	// 100 single-access regions cycled through the FT: none learned.
	for i := uint64(0); i < 100; i++ {
		tr.observe(prefetch.Access{PC: 1, VAddr: i * mem.PageSize})
	}
	if learned != 0 {
		t.Errorf("one-bit regions learned: %d", learned)
	}
}

func TestParametricNameBounds(t *testing.T) {
	// Within the paper's sweep ranges: fine.
	for _, name := range []string{"vGaze-512B", "vGaze-64KB", "Gaze-PHT1024"} {
		if _, err := New(name); err != nil {
			t.Errorf("New(%q) = %v, want ok", name, err)
		}
	}
	// Absurd parameters must error instead of allocating: gazeserve
	// validates names by constructing them.
	for _, name := range []string{"vGaze-999999999KB", "vGaze-999999999999B", "Gaze-PHT1000000000"} {
		if _, err := New(name); err == nil {
			t.Errorf("New(%q) accepted an unbounded parameter", name)
		}
	}
}

func TestParametricNameStructuralValidation(t *testing.T) {
	// Structurally invalid parameters must return errors, never panic:
	// non-power-of-two regions, way-indivisible PHT sizes, overflow-sized
	// KB values that would wrap past the magnitude cap.
	for _, name := range []string{"vGaze-3KB", "vGaze-100B", "Gaze-PHT7", "vGaze-9007199254740993KB"} {
		p, err := New(name)
		if err == nil {
			t.Errorf("New(%q) = %T, want error", name, p)
		}
	}
}

func TestParametricNameRejectsTrailingJunk(t *testing.T) {
	// Sloppy parsing would turn each junk suffix into a distinct cache
	// key for the identical configuration.
	for _, name := range []string{"Gaze-PHT256a", "vGaze-8KBjunk", "vGaze-512Bx", "vGaze-KB",
		"vGaze-08KB", "vGaze-+8KB", "Gaze-PHT0256"} { // non-canonical spellings would mint duplicate cache keys
		if p, err := New(name); err == nil {
			t.Errorf("New(%q) = %T, want error", name, p)
		}
	}
}
