package workload

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestMaterializeSharesOneSlab(t *testing.T) {
	ResetTraceCache()
	a := MustMaterialize("lbm-1274", 2_000)
	b := MustMaterialize("lbm-1274", 2_000)
	if &a[0] != &b[0] {
		t.Error("repeated Materialize returned distinct slabs")
	}
	c := MustMaterialize("lbm-1274", 3_000) // different length = different key
	if len(c) != 3_000 || &a[0] == &c[0] {
		t.Error("different length shared a slab")
	}

	st := TraceCacheStats()
	if st.Entries != 2 || st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 misses, 1 hit", st)
	}
	if want := int64(5_000) * trace.RecordBytes; st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestMaterializeMatchesGenerate(t *testing.T) {
	ResetTraceCache()
	got := MustMaterialize("fotonik3d_s-8225", 1_500)
	want := MustGenerate("fotonik3d_s-8225", 1_500)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestMaterializeUnknownNameNotCached(t *testing.T) {
	ResetTraceCache()
	if _, err := Materialize("no-such-trace", 100); err == nil {
		t.Fatal("unknown trace did not error")
	}
	st := TraceCacheStats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("failed materialization left %+v behind", st)
	}
}

// TestMaterializeSingleFlight hammers one key from many goroutines (run
// under -race in CI) and asserts the trace was generated exactly once
// and every caller observed the same slab.
func TestMaterializeSingleFlight(t *testing.T) {
	ResetTraceCache()
	const workers = 16
	slabs := make([]*trace.Record, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			recs := MustMaterialize("cassandra-p0c0", 4_000)
			slabs[w] = &recs[0]
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if slabs[w] != slabs[0] {
			t.Fatalf("goroutine %d saw a different slab", w)
		}
	}
	st := TraceCacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 generation", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, workers-1)
	}
}

func TestResetTraceCache(t *testing.T) {
	MustMaterialize("lbm-1274", 1_000)
	ResetTraceCache()
	st := TraceCacheStats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 || st.Bytes != 0 || st.Evictions != 0 {
		t.Errorf("stats after reset = %+v, want all zero", st)
	}
}

// TestTraceCacheBudgetEvictsLRU bounds the cache to two slabs' worth of
// bytes and touches three traces: the least-recently-used one must be
// evicted, the footprint must fit the budget, and a re-request must
// regenerate (miss) rather than serve a dropped slab.
func TestTraceCacheBudgetEvictsLRU(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	const n = 1_000
	slab := int64(n) * trace.RecordBytes
	SetTraceCacheBudget(2 * slab)

	MustMaterialize("lbm-1274", n)         // LRU after the touch below
	MustMaterialize("mcf_s-1554", n)       //
	MustMaterialize("lbm-1274", n)         // touch: mcf is now LRU
	MustMaterialize("fotonik3d_s-8225", n) // over budget: evicts mcf

	st := TraceCacheStats()
	if st.Entries != 2 || st.Bytes != 2*slab {
		t.Errorf("after eviction: %d entries / %d bytes, want 2 / %d", st.Entries, st.Bytes, 2*slab)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}

	missesBefore := st.Misses
	a := MustMaterialize("lbm-1274", n) // still resident: hit
	if TraceCacheStats().Misses != missesBefore {
		t.Error("lbm-1274 was evicted but should have been recently used")
	}
	MustMaterialize("mcf_s-1554", n) // evicted: regenerates
	if got := TraceCacheStats().Misses; got != missesBefore+1 {
		t.Errorf("misses = %d, want %d (mcf should regenerate)", got, missesBefore+1)
	}
	_ = a
}

// TestTraceCacheBudgetKeepsNewestSlab: a single slab larger than the
// whole budget must still be handed to its caller and stay resident (the
// alternative is regenerating it on every request), while everything else
// is evicted.
func TestTraceCacheBudgetKeepsNewestSlab(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	SetTraceCacheBudget(100) // smaller than any slab
	recs := MustMaterialize("lbm-1274", 1_000)
	if len(recs) != 1_000 {
		t.Fatalf("materialized %d records", len(recs))
	}
	st := TraceCacheStats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want the newest slab retained", st.Entries)
	}
	MustMaterialize("mcf_s-1554", 1_000)
	st = TraceCacheStats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("after second oversized slab: %+v, want 1 entry / 1 eviction", st)
	}
}

// TestSetTraceCacheBudgetEvictsImmediately: lowering the budget under the
// current footprint evicts without waiting for the next Materialize.
func TestSetTraceCacheBudgetEvictsImmediately(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	MustMaterialize("lbm-1274", 1_000)
	MustMaterialize("mcf_s-1554", 1_000)
	SetTraceCacheBudget(int64(1_000)*trace.RecordBytes + 1)
	st := TraceCacheStats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("after budget drop: %+v, want 1 entry / 1 eviction", st)
	}
}

// fakeSource serves one in-memory trace under a fixed name.
type fakeSource struct {
	name string
	recs []trace.Record
}

func (f *fakeSource) Exists(name string) bool { return name == f.name }
func (f *fakeSource) Load(name string, n int) ([]trace.Record, error) {
	if name != f.name {
		return nil, errTestNoTrace
	}
	if n <= 0 || n > len(f.recs) {
		n = len(f.recs)
	}
	return f.recs[:n], nil
}

var errTestNoTrace = errorString("no such trace")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestSourceResolution: a registered Source's traces materialize, cache,
// and Exists like catalogue names, and unknown names still fail.
func TestSourceResolution(t *testing.T) {
	ResetTraceCache()
	ResetSources()
	defer ResetSources()
	defer ResetTraceCache()

	name := IngestedName("deadbeef")
	recs := []trace.Record{{PC: 1, Addr: 64}, {PC: 2, Addr: 128}, {PC: 3, Addr: 192}}
	RegisterSource(&fakeSource{name: name, recs: recs})

	if !Exists(name) {
		t.Fatalf("Exists(%q) = false with a source registered", name)
	}
	if Exists(IngestedName("cafef00d")) {
		t.Error("Exists accepted a name no source serves")
	}

	got := MustMaterialize(name, 2)
	if len(got) != 2 || got[0] != recs[0] {
		t.Fatalf("materialized %v", got)
	}
	// Longer than the source trace: every record, no error (the simulator
	// loops short traces).
	all := MustMaterialize(name, 10)
	if len(all) != 3 {
		t.Fatalf("n beyond trace length returned %d records, want 3", len(all))
	}
	st := TraceCacheStats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (two lengths)", st.Misses)
	}

	InvalidateTrace(name)
	if TraceCacheStats().Entries != 0 {
		t.Error("InvalidateTrace left slabs resident")
	}
	if TraceCacheStats().Evictions != 0 {
		t.Error("InvalidateTrace counted as eviction")
	}
}

func TestTraceDigest(t *testing.T) {
	if d, ok := TraceDigest("lbm-1274"); ok || d != "" {
		t.Errorf("catalogue name has digest %q", d)
	}
	if d, ok := TraceDigest(IngestedName("abc123")); !ok || d != "abc123" {
		t.Errorf("ingested digest = %q, %v", d, ok)
	}
	if _, ok := TraceDigest("ingested:"); ok {
		t.Error("empty address parsed as a digest")
	}
	if _, ok := TraceDigest("no-such-trace"); ok {
		t.Error("unknown plain name has a digest")
	}
}
