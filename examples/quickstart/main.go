// Quickstart: attach the Gaze prefetcher to a simulated single-core
// system, run a streaming workload, and compare against no prefetching.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a workload from the catalogue. bwaves_s-2609 is a SPEC17
	//    streaming trace: long stride-1 sweeps over fresh pages.
	const traceName = "bwaves_s-2609"
	const traceLen = 150_000

	// 2. Build the Table II system: 4-wide OoO core, 48KB L1D, 512KB L2C,
	//    2MB LLC, DDR4-3200.
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 100_000
	cfg.SimInstructions = 400_000

	// 3. Run once without prefetching, once with Gaze.
	base := mustRun(cfg, traceName, traceLen, nil)
	gaze := core.NewDefault()
	withGaze := mustRun(cfg, traceName, traceLen, gaze)

	// 4. Report the §IV-A3 metrics.
	fmt.Printf("workload:        %s\n", traceName)
	fmt.Printf("baseline IPC:    %.3f\n", base.MeanIPC())
	fmt.Printf("Gaze IPC:        %.3f\n", withGaze.MeanIPC())
	fmt.Printf("speedup:         %.2fx\n", withGaze.MeanIPC()/base.MeanIPC())
	fmt.Printf("accuracy:        %.1f%%\n", 100*withGaze.Accuracy())
	fmt.Printf("LLC coverage:    %.1f%%\n", 100*withGaze.Coverage())
	fmt.Printf("late prefetches: %.1f%%\n", 100*withGaze.LateFraction())
	fmt.Printf("storage budget:  %.2fKB (Table I)\n", gaze.TotalStorageBytes()/1024)

	st := gaze.InternalStats()
	fmt.Printf("\nGaze internals: %d regions tracked, %d learned, %d PHT hits, %d streaming regions\n",
		st.RegionsTracked, st.RegionsLearned, st.PHTHits, st.StreamingRegions)
}

func mustRun(cfg sim.Config, name string, n int, pf prefetch.Prefetcher) sim.Result {
	recs, err := workload.Generate(name, n)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
		L1Prefetcher: pf,
	}})
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}
