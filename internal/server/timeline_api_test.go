package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
)

// newTimelineTestServer wires an engine with interval telemetry armed
// plus a jobs manager, the way gazeserve -telemetry-interval does.
func newTimelineTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1, TelemetryInterval: 5_000})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: Compiler(eng), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck
	})
	return ts, eng
}

// overlayFor fetches the /analytics/timeline overlay for one trace and
// prefetcher list.
func overlayFor(t *testing.T, ts *httptest.Server, query string) (TimelineOverlayResponse, *http.Response) {
	t.Helper()
	r, err := http.Get(ts.URL + "/analytics/timeline?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var resp TimelineOverlayResponse
	if r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, r
}

func TestResultTimelineDocumentJSONAndCSV(t *testing.T) {
	ts, _ := newTimelineTestServer(t)

	// Before any run the overlay reports the series as incomplete.
	before, r := overlayFor(t, ts, "trace=lbm-1274&prefetchers=Gaze")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("overlay status = %d", r.StatusCode)
	}
	if before.SeriesTotal != 1 || before.SeriesComplete != 0 || len(before.Series) != 1 {
		t.Fatalf("pre-run overlay = %+v", before)
	}
	addr := before.Series[0].Address
	if len(addr) != 64 {
		t.Fatalf("series address %q is not a content address", addr)
	}

	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil)

	// JSON document: the canonical persisted bytes, strong-ETag'd.
	r, err := http.Get(ts.URL + "/results/" + addr + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("timeline status = %d: %s", r.StatusCode, doc)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	etag := r.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Errorf("ETag = %q, want a strong quoted tag", etag)
	}
	var rec struct {
		Version   int             `json:"version"`
		Key       string          `json:"key"`
		Telemetry json.RawMessage `json:"telemetry"`
	}
	if err := json.Unmarshal(doc, &rec); err != nil {
		t.Fatalf("document is not JSON: %v", err)
	}
	if rec.Version != engine.TelemetrySchemaVersion || rec.Key == "" || len(rec.Telemetry) == 0 {
		t.Errorf("document shape: version %d key %q", rec.Version, rec.Key)
	}
	tel, err := engine.DecodeTelemetry(doc)
	if err != nil || len(tel.Cores) != 1 || len(tel.Cores[0].Samples) == 0 {
		t.Fatalf("decoded timeline empty: %v", err)
	}

	// Conditional revalidation answers 304 with no body.
	req, _ := http.NewRequest("GET", ts.URL+"/results/"+addr+"/timeline", nil)
	req.Header.Set("If-None-Match", etag)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation status = %d, want 304", r.StatusCode)
	}

	// CSV rendering: header plus one row per sample, a distinct ETag.
	r, err = http.Get(ts.URL + "/results/" + addr + "/timeline?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("csv status = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("csv content type = %q", ct)
	}
	if r.Header.Get("ETag") == etag {
		t.Error("csv and json representations share an ETag")
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0]+"\n" != timelineCSVHeader {
		t.Errorf("csv header = %q", lines[0])
	}
	if got, want := len(lines)-1, len(tel.Cores[0].Samples); got != want {
		t.Errorf("csv rows = %d, want %d (one per sample)", got, want)
	}

	// The overlay now reports the series complete, with samples and the
	// Gaze introspection document, under a changed ETag.
	after, _ := overlayFor(t, ts, "trace=lbm-1274&prefetchers=Gaze")
	if after.SeriesComplete != 1 || !after.Series[0].Complete {
		t.Fatalf("post-run overlay = %+v", after)
	}
	if after.Interval == 0 || len(after.Series[0].Samples) == 0 {
		t.Errorf("overlay series empty: interval %d, %d samples", after.Interval, len(after.Series[0].Samples))
	}
	if len(after.Series[0].Introspection) == 0 {
		t.Error("Gaze series carries no introspection document")
	}
	if after.ETag == before.ETag {
		t.Error("overlay ETag unchanged after a timeline landed")
	}

	// The landed-overlay ETag revalidates.
	req, _ = http.NewRequest("GET", ts.URL+"/analytics/timeline?trace=lbm-1274&prefetchers=Gaze", nil)
	req.Header.Set("If-None-Match", after.ETag)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotModified {
		t.Errorf("overlay revalidation status = %d, want 304", r.StatusCode)
	}
}

// TestJobLinksCompletedTimelines: GET /jobs/{id} on a succeeded job
// links the timeline documents its runs persisted, and every link
// resolves.
func TestJobLinksCompletedTimelines(t *testing.T) {
	ts, _ := newTimelineTestServer(t)
	sweep := SweepRequest{Traces: []string{"lbm-1274"}, Prefetchers: []string{"IP-stride", "Gaze"}}
	st, r := submitJob(t, ts, JobSubmitRequest{Type: "sweep", Request: mustRaw(t, sweep)})
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", r.StatusCode)
	}
	final := waitJobState(t, ts, st.ID, string(jobs.Succeeded))
	if len(final.Timelines) == 0 {
		t.Fatal("succeeded job links no timelines")
	}
	for _, link := range final.Timelines {
		if !strings.HasPrefix(link, "/results/") || !strings.HasSuffix(link, "/timeline") {
			t.Errorf("malformed timeline link %q", link)
			continue
		}
		resp, err := http.Get(ts.URL + link)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("linked timeline %s = %d", link, resp.StatusCode)
		}
	}
}

// TestTimelineNeverTorn is the -race acceptance check: while a sliced
// job is in flight, concurrent timeline reads must only ever observe
// 404 (not started), 409 (computing), or the complete document — never
// torn or partial bytes. The atomic sidecar write plus save-before-
// commit ordering is what makes this hold.
func TestTimelineNeverTorn(t *testing.T) {
	eng := engine.New(engine.Options{
		Scale:             engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 100_000},
		TelemetryInterval: 5_000,
		SliceWorkers:      2,
	})
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)

	job := engine.Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}, Overrides: engine.Overrides{SliceShards: 4}}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	addr := job.ContentAddress(eng.Scale())

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := eng.RunContext(context.Background(), job); err != nil {
			t.Error(err)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := http.Get(ts.URL + "/results/" + addr + "/timeline")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(r.Body)
				r.Body.Close()
				switch r.StatusCode {
				case http.StatusNotFound, http.StatusConflict:
					// Acceptable pre-completion answers.
				case http.StatusOK:
					if _, _, err := engine.ImportTelemetry(addr, body); err != nil {
						t.Errorf("served timeline does not verify: %v", err)
						return
					}
				default:
					t.Errorf("unexpected status %d: %s", r.StatusCode, body)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// After the run, the document must be complete and verified.
	r, err := http.Get(ts.URL + "/results/" + addr + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("post-run timeline = %d: %s", r.StatusCode, body)
	}
	if _, _, err := engine.ImportTelemetry(addr, body); err != nil {
		t.Fatalf("final timeline does not verify: %v", err)
	}
}
