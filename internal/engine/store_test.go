package engine

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

func sampleResult() sim.Result {
	return sim.Result{
		Cores: []sim.CoreResult{{
			IPC:          1.234,
			Instructions: 150_000,
			L1D:          cache.Stats{DemandAccesses: 10, DemandMisses: 3, UsefulPrefetches: 2},
			L2C:          cache.Stats{DemandMisses: 1, UselessPrefetches: 1},
		}},
		LLC:            cache.Stats{DemandMisses: 7},
		DRAMRequests:   42,
		DRAMRowHitRate: 0.625,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if _, ok := s.Get("k1"); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("stored entry missing")
	}
	if got.MeanIPC() != want.MeanIPC() || got.Accuracy() != want.Accuracy() ||
		got.DRAMRequests != want.DRAMRequests || got.LLC.DemandMisses != want.LLC.DemandMisses {
		t.Errorf("round-trip mismatch: got %+v want %+v", got, want)
	}
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestStoreCorruptedEntryRecovers(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	p := s.path("k1")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("corrupted entry returned a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupted entry not deleted")
	}
	// The store must accept a fresh Put for the same key afterwards.
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); !ok {
		t.Error("recomputed entry missing after recovery")
	}
}

func TestStoreRejectsVersionAndKeyMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	// A record stored under k1's hash path but claiming a different key
	// (hash collision, or a tool writing the wrong file) must miss.
	data, err := os.ReadFile(s.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k1"),
		[]byte(string(data[:len(data)-1])+`}`), 0o644); err != nil { // keep JSON valid
		t.Fatal(err)
	}
	forged := []byte(`{"version":1,"key":"other","result":{}}`)
	if err := os.WriteFile(s.path("k1"), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Error("key-mismatched record returned a hit")
	}

	stale := []byte(`{"version":999,"key":"k2","result":{}}`)
	if err := os.MkdirAll(filepath.Dir(s.path("k2")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k2"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k2"); ok {
		t.Error("stale-version record returned a hit")
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("GAZE_CACHE_DIR", "/tmp/gaze-test-cache")
	if d := DefaultDir(); d != "/tmp/gaze-test-cache" {
		t.Errorf("DefaultDir = %q", d)
	}
}
