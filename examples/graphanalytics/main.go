// Graph analytics: the §III-C scenario. A Ligra-style BFS compute phase
// interleaves a dense frontier stream with sparse irregular vertex
// accesses; dense footprints misapplied to the sparse regions cause
// over-prefetching. This example compares Gaze-PHT (characterization only,
// dense patterns through the PHT) with full Gaze (dedicated two-stage
// streaming module) — the Fig 10 comparison on live workloads.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	workloads := []struct {
		name  string
		phase string
	}{
		{"PageRank-1", "init phase (streaming-dominated)"},
		{"PageRank-61", "compute phase (interleaved dense + sparse)"},
		{"BellmanFord-34", "compute phase"},
		{"BFS-17", "compute phase"},
	}

	fmt.Println("Ligra-style graph analytics: streaming-module effect (cf. Fig 10)")
	fmt.Println()
	fmt.Printf("%-16s %-38s %10s %10s %10s\n", "trace", "phase", "Gaze-PHT", "Gaze", "accuracy Δ")
	for _, w := range workloads {
		base := run(w.name, "none")
		pht := run(w.name, "Gaze-PHT")
		full := run(w.name, "Gaze")
		fmt.Printf("%-16s %-38s %9.3fx %9.3fx %+9.1f%%\n",
			w.name, w.phase,
			pht.MeanIPC()/base.MeanIPC(),
			full.MeanIPC()/base.MeanIPC(),
			100*(full.Accuracy()-pht.Accuracy()))
	}
	fmt.Println()
	fmt.Println("The dedicated streaming module (DPCT + dense counter + two-stage")
	fmt.Println("aggressiveness) keeps dense-pattern prefetching out of the sparse")
	fmt.Println("vertex regions that share its trigger block.")
}

func run(name, pf string) sim.Result {
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 100_000
	cfg.SimInstructions = 400_000
	recs, err := workload.Generate(name, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	p, err := prefetchers.New(pf)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
		L1Prefetcher: p,
	}})
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}
