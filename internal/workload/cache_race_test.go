package workload

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestTraceCacheBudgetRace is the -race regression net for the
// byte-budget LRU: many goroutines Materialize distinct traces whose
// combined footprint sits well past the budget, so evictions happen
// continuously while lookups, generations and a stats monitor run. The
// invariants under test:
//
//   - the resident footprint never exceeds the budget whenever the lock
//     is released (every slab here is smaller than the budget, so the
//     keep-exemption in evictLocked never legitimately overshoots);
//   - no double-eviction: the bytes counter equals the sum of resident
//     entries' sizes at all times (an entry evicted twice would be
//     subtracted twice and drive the counter negative);
//   - the evictions counter reconciles exactly with misses and residency.
func TestTraceCacheBudgetRace(t *testing.T) {
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)

	const n = 2_000 // records per slab
	slabBytes := int64(n) * trace.RecordBytes
	budget := slabBytes*3 + slabBytes/2 // room for 3 slabs, never 4
	SetTraceCacheBudget(budget)

	traces := []string{
		"lbm-1274", "milc-127", "bwaves-1963", "gcc-13",
		"soplex-66", "hmmer-7", "sphinx3-417", "zeusmp-300",
	}

	// auditLocked recomputes the footprint from the entries map and
	// cross-checks the incremental counter — the double-evict detector.
	audit := func() (bytes int64, entries int) {
		traceCache.mu.Lock()
		defer traceCache.mu.Unlock()
		var sum int64
		for _, e := range traceCache.entries {
			if e.done {
				sum += e.bytes
				entries++
			}
		}
		if sum != traceCache.bytes {
			t.Errorf("bytes counter %d != resident sum %d (double-evict or lost entry)", traceCache.bytes, sum)
		}
		if traceCache.bytes < 0 {
			t.Errorf("bytes counter negative: %d", traceCache.bytes)
		}
		return traceCache.bytes, entries
	}

	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if bytes, _ := audit(); bytes > budget {
				t.Errorf("resident bytes %d exceed budget %d", bytes, budget)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				name := traces[(g+i)%len(traces)]
				recs, err := Materialize(name, n)
				if err != nil {
					t.Error(err)
					return
				}
				if len(recs) != n {
					t.Errorf("%s: %d records, want %d", name, len(recs), n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	monitor.Wait()

	bytes, entries := audit()
	if bytes > budget {
		t.Fatalf("final footprint %d exceeds budget %d", bytes, budget)
	}
	st := TraceCacheStats()
	if st.Evictions == 0 {
		t.Fatal("8 distinct slabs through a 3.5-slab budget produced no evictions")
	}
	// Conservation: every miss added a slab, every eviction removed one,
	// nothing else did (no failures, no invalidations in this test).
	if st.Misses-st.Evictions != uint64(entries) {
		t.Fatalf("misses %d - evictions %d != resident %d: eviction accounting drifted",
			st.Misses, st.Evictions, entries)
	}
	if st.Entries != entries {
		t.Fatalf("stats entries %d != audited %d", st.Entries, entries)
	}
}

// TestTraceCacheBudgetBoundarySingleflight pins the in-flight half of the
// eviction contract: an entry still generating contributes zero bytes and
// is never an eviction victim, so concurrent first requests for the same
// trace still coalesce onto one generation even while the cache is
// evicting at the boundary.
func TestTraceCacheBudgetBoundarySingleflight(t *testing.T) {
	ResetTraceCache()
	t.Cleanup(ResetTraceCache)

	const n = 2_000
	SetTraceCacheBudget(int64(n) * trace.RecordBytes) // exactly one slab fits

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Materialize("lbm-1274", n); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := TraceCacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight collapsed 8 concurrent requests)", st.Misses)
	}
	if st.Hits != 7 {
		t.Fatalf("hits = %d, want 7", st.Hits)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d: the just-materialized slab must be keep-exempt", st.Evictions)
	}
	if st.Bytes > int64(n)*trace.RecordBytes {
		t.Fatalf("bytes = %d exceed the one-slab budget", st.Bytes)
	}
}
