// Worker mode: gazeserve -worker <coordinator-url> runs no HTTP
// listener. It interrogates the coordinator for the scale to build a
// compatible engine, registers, and then leases, executes and uploads
// work units until SIGINT/SIGTERM. Stopping is always safe — in-flight
// leases expire on the coordinator and re-lease elsewhere, and a result
// that races a re-leased copy commits identical bytes.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// runWorker is the -worker entry point; its return value is the process
// exit code. A worker keeps no result store or trace registry unless
// pointed at one explicitly: on a shared machine the default directories
// would interleave with a coordinator's, and the coordinator's store is
// the authoritative one anyway.
func runWorker(url string, conc int, name, cacheDir string, noCache bool, traceDir string, engWorkers int, seed, telInterval uint64, logger *slog.Logger, tracer *obs.Tracer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := cluster.NewClient(url, cluster.ClientOptions{})
	info, err := infoWithRetry(ctx, client)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gazeserve: fetching coordinator info from %s: %v\n", url, err)
		return 1
	}
	if info.StoreSchemaVersion != engine.StoreSchemaVersion {
		fmt.Fprintf(os.Stderr, "gazeserve: coordinator runs store schema v%d, this binary v%d\n",
			info.StoreSchemaVersion, engine.StoreSchemaVersion)
		return 1
	}
	logger.Info("worker mode", "coordinator", url, "scale", fmt.Sprintf("%+v", info.Scale),
		"lease_ttl", time.Duration(info.LeaseTTLMS)*time.Millisecond)

	// Telemetry arms on the worker too: its engine is the one computing,
	// so the timeline is collected here and uploaded beside the result.
	opts := engine.Options{Scale: info.Scale, Workers: engWorkers, Seed: seed, TelemetryInterval: telInterval}
	if cacheDir != "" && !noCache {
		store, err := engine.Open(cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		opts.Store = store
		logger.Info("worker result store open", "dir", store.Dir(), "entries", store.Len())
	}
	eng := engine.New(opts)

	var reg *traceset.Registry
	if traceDir != "" && traceDir != "none" {
		reg, err = traceset.Open(traceDir, traceset.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Registering the registry as a workload source is what lets the
		// engine materialize replicated `ingested:<addr>` traces.
		workload.RegisterSource(reg)
		logger.Info("worker trace registry open", "dir", traceDir, "traces", reg.Len())
	}

	w := cluster.NewWorker(cluster.WorkerOptions{
		Client:      client,
		Engine:      eng,
		Registry:    reg,
		Concurrency: conc,
		Name:        name,
		Logger:      logger,
		Tracer:      tracer,
	})
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gazeserve: worker: %v\n", err)
		return 1
	}
	c := w.Counters()
	logger.Info("worker done", "completed", c.Completed, "failed", c.Failed, "replicated", c.Replicated)
	return 0
}

// infoWithRetry keeps asking for the coordinator document until it
// answers or ctx ends — workers routinely start before (or restart
// during) the coordinator, and dying on a connection refusal would turn
// every coordinator deploy into a fleet restart.
func infoWithRetry(ctx context.Context, client *cluster.Client) (cluster.Info, error) {
	for {
		info, err := client.Info(ctx)
		if err == nil || ctx.Err() != nil {
			return info, err
		}
		slog.Warn("coordinator not reachable yet", "error", err)
		if serr := cluster.RealClock.Sleep(ctx, 2*time.Second); serr != nil {
			return cluster.Info{}, err
		}
	}
}
