package core

import (
	"testing"

	"repro/internal/mem"
)

// TestIntrospectCharacterizesLearnedState drives Gaze through pattern
// learning and region reuse, then checks the prefetch.Introspector view
// agrees with the internal statistics it summarizes.
func TestIntrospectCharacterizesLearnedState(t *testing.T) {
	g := NewDefault()
	c := &collect{}

	in := g.Introspect()
	if in.PatternEntries != 0 {
		t.Fatalf("fresh Gaze reports %d pattern entries", in.PatternEntries)
	}
	if in.PatternCapacity == 0 {
		t.Fatal("pattern capacity = 0: occupancy would be meaningless")
	}

	// Learn a sparse pattern on one page, replay it on another: one PHT
	// entry, one pattern hit. Page numbers get distinct low bytes so the
	// direct-mapped reuse tracker (indexed by region low bits) never
	// conflict-evicts between them.
	order := []int{5, 9, 12, 20, 33}
	runRegion(g, c, 0x100, 0x1001, order)
	g.EvictNotify(0x1001 * mem.PageSize)
	access(g, c, 0x100, 0x2002, 5)
	access(g, c, 0x100, 0x2002, 9)

	in = g.Introspect()
	if in.PatternEntries != 1 {
		t.Errorf("PatternEntries = %d, want 1 learned pattern", in.PatternEntries)
	}
	if in.PatternHits != uint64(g.InternalStats().PHTHits) {
		t.Errorf("PatternHits = %d, InternalStats().PHTHits = %d", in.PatternHits, g.InternalStats().PHTHits)
	}

	// A dense streaming page exercises the stage-1/2 streaming paths.
	for off := 0; off < 48; off++ {
		access(g, c, 0x200, 0x3003, off)
	}
	in = g.Introspect()
	if in.StreamHits == 0 {
		t.Error("StreamHits = 0 after a dense streaming page")
	}

	// Re-activating a previously tracked region feeds the reuse histogram.
	g.EvictNotify(0x2002 * mem.PageSize)
	access(g, c, 0x100, 0x2002, 5)
	access(g, c, 0x100, 0x2002, 9)
	in = g.Introspect()
	var reuses uint64
	for _, n := range in.ReuseHistogram {
		reuses += n
	}
	if reuses == 0 {
		t.Error("ReuseHistogram empty after a region re-activation")
	}
}
