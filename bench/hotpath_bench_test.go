package bench

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/prefetch"
	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// nextLine is a minimal allocation-free prefetcher that exercises the
// full issue path (queue push with duplicates, drain, L1 and L2 fills)
// without any prefetcher-model cost, so the step benchmarks measure the
// simulator, not a particular design.
type nextLine struct{}

func (nextLine) Name() string { return "bench-nextline" }

func (nextLine) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := a.VAddr &^ 63
	issue(prefetch.Request{VLine: line + 64, Level: prefetch.LevelL1})
	issue(prefetch.Request{VLine: line + 128, Level: prefetch.LevelL2})
}

func (nextLine) EvictNotify(uint64) {}

// warmSystem builds a single-core system over a materialized trace and
// advances it past every warm-up transient (cache fill, queue and table
// population), leaving it in the steady state the simulator spends its
// life in. Telemetry is armed deliberately: the zero-alloc and step
// benchmarks must hold with interval sampling live, proving collection
// costs one compare per step and boundary appends stay inside the
// preallocated sample storage.
func warmSystem(tb testing.TB, pf prefetch.Prefetcher) *sim.System {
	tb.Helper()
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 0
	cfg.TelemetryInterval = 5_000
	recs := workload.MustMaterialize("bwaves_s-2609", 50_000)
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
		L1Prefetcher: pf,
	}})
	if err != nil {
		tb.Fatal(err)
	}
	sys.Advance(100_000)
	return sys
}

// BenchmarkStep measures the steady-state simulation step — one trace
// record through the core, the prefetch queues and the cache hierarchy.
// It is pinned at 0 allocs/op by CI (cmd/benchjson -pin).
func BenchmarkStep(b *testing.B) {
	sys := warmSystem(b, nextLine{})
	b.ReportAllocs()
	b.ResetTimer()
	sys.Advance(b.N)
}

// BenchmarkStepGaze is BenchmarkStep with the paper's prefetcher, so the
// full Gaze training path rides the steady state. Also alloc-pinned.
func BenchmarkStepGaze(b *testing.B) {
	sys := warmSystem(b, prefetchers.MustNew("Gaze"))
	b.ReportAllocs()
	b.ResetTimer()
	sys.Advance(b.N)
}

// BenchmarkQueue measures one Push (with a duplicate sibling) plus the
// matching PopReady on a warm prefetch queue. Pinned at 0 allocs/op.
func BenchmarkQueue(b *testing.B) {
	q := prefetch.NewQueue(32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		line := uint64(i%1024) * 64
		q.Push(prefetch.Request{VLine: line}, now)
		q.Push(prefetch.Request{VLine: line, Level: prefetch.LevelL2}, now) // duplicate merge
		q.PopReady(now)
	}
}

// BenchmarkTraceGen measures raw trace synthesis — what every job of a
// sweep used to pay before the materialized-trace cache.
func BenchmarkTraceGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.MustGenerate("bwaves_s-2609", 50_000)
	}
}

// BenchmarkTraceMaterialize measures the cache-hit path every job after
// the first actually takes.
func BenchmarkTraceMaterialize(b *testing.B) {
	workload.MustMaterialize("bwaves_s-2609", 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.MustMaterialize("bwaves_s-2609", 50_000)
	}
}

// BenchmarkSweepRepeat is the end-to-end scenario this repository's
// engine exists for: one trace, four prefetcher configurations, three
// config points (a Fig 16-style sensitivity sweep), on a cold engine so
// every job simulates. The materialized-trace cache means the trace is
// generated once per process instead of once per job; the rest of the
// delta against history is the allocation-free hot path.
func BenchmarkSweepRepeat(b *testing.B) {
	var jobs []engine.Job
	for _, pq := range []int{16, 32, 64} {
		o := engine.Overrides{PQCapacity: pq}
		for _, pf := range []string{"none", "Gaze", "PMP", "Bingo"} {
			jobs = append(jobs, engine.Job{
				Traces: []string{"bwaves_s-2609"}, L1: []string{pf}, Overrides: o,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Telemetry armed at the service default: the BENCH_10 trajectory
		// point demonstrates sweep throughput with interval sampling live
		// is within noise of the unarmed PR 8 numbers.
		eng := engine.New(engine.Options{Scale: engine.Quick, TelemetryInterval: sim.DefaultTelemetryInterval})
		eng.RunAll(jobs)
	}
}

// TestStepZeroAlloc pins the steady-state invariant: once warm, stepping
// the simulator allocates nothing — not with an issuing stub, not with
// any evaluated prefetcher.
func TestStepZeroAlloc(t *testing.T) {
	pfs := map[string]prefetch.Prefetcher{
		"nextline": nextLine{},
		"none":     prefetch.Nil{},
	}
	for _, name := range prefetchers.EvaluatedNames() {
		pfs[name] = prefetchers.MustNew(name)
	}
	for name, pf := range pfs {
		sys := warmSystem(t, pf)
		if n := testing.AllocsPerRun(200, func() { sys.Advance(50) }); n != 0 {
			t.Errorf("%s: steady-state step allocates %.1f times per 50 steps, want 0", name, n)
		}
	}
}

// TestQueueZeroAlloc pins Push (hit, miss and full-drop) and PopReady at
// zero allocations on a warm queue.
func TestQueueZeroAlloc(t *testing.T) {
	q := prefetch.NewQueue(16, 0.5)
	for i := 0; i < 64; i++ { // warm: reach capacity and wrap the ring
		q.Push(prefetch.Request{VLine: uint64(i) * 64}, float64(i))
		if i%2 == 0 {
			q.PopReady(float64(i))
		}
	}
	n := testing.AllocsPerRun(500, func() {
		now := float64(q.Len())
		q.Push(prefetch.Request{VLine: 64}, now)
		q.Push(prefetch.Request{VLine: 64}, now)  // duplicate
		q.Push(prefetch.Request{VLine: 128}, now) // likely full drop
		q.PopReady(now * 2)
	})
	if n != 0 {
		t.Errorf("queue operations allocate %.1f times per run, want 0", n)
	}
}
