package workload

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// build dispatches to the kind-specific builder.
func build(g *gen, n int) {
	switch g.spec.kind {
	case kindStream:
		buildStream(g, n)
	case kindMixedSpatial:
		buildMixedSpatial(g, n)
	case kindIrregular:
		buildIrregular(g, n)
	case kindGraphInit:
		buildGraphInit(g, n)
	case kindGraphCompute:
		buildGraphCompute(g, n)
	case kindCloud:
		buildCloud(g, n)
	case kindServer:
		buildServer(g, n)
	case kindClient:
		buildClient(g, n)
	default:
		buildMixedSpatial(g, n)
	}
}

// stream models one array traversal: contiguous virtual pages visited in
// order, each page fully (or stride-d) touched front to back. Re-passes
// over the same range model repeated sweeps (bwaves-style), which resident
// data turns into the redundant-prefetch scenario of §IV-B3.
type stream struct {
	pc        uint64
	pages     []uint64 // current range
	pageIdx   int
	passes    int // remaining re-passes over the same range
	rangeLen  int
	reuseProb float64
	stride    int
}

func (g *gen) newStream(rangeLen int, reuseProb float64, stride int) *stream {
	if stride < 1 {
		stride = 1
	}
	return &stream{
		pc:        g.pcPool(1)[0],
		rangeLen:  rangeLen,
		reuseProb: reuseProb,
		stride:    stride,
	}
}

// nextRegion returns the next page-sized region activation of the stream.
func (s *stream) nextRegion(g *gen) *regionStream {
	if s.pageIdx >= len(s.pages) {
		if s.passes > 0 && len(s.pages) > 0 {
			s.passes--
		} else {
			// Allocate a fresh contiguous range.
			s.pages = s.pages[:0]
			for i := 0; i < s.rangeLen; i++ {
				s.pages = append(s.pages, g.freshPage())
			}
			s.passes = 0
			if g.r.Bool(s.reuseProb) {
				s.passes = 1 + g.r.Intn(2)
			}
		}
		s.pageIdx = 0
	}
	page := s.pages[s.pageIdx]
	s.pageIdx++
	order := make([]int, 0, mem.BlocksPerPage/s.stride)
	for o := 0; o < mem.BlocksPerPage; o += s.stride {
		order = append(order, o)
	}
	return &regionStream{page: page, pcs: []uint64{s.pc}, order: order}
}

func buildStream(g *gen, n int) {
	nStreams := 2 + int(3*g.spec.intensity)
	streams := make([]*stream, nStreams)
	for i := range streams {
		streams[i] = g.newStream(48+g.r.Intn(32), g.spec.reuse, g.spec.strideBlocks)
	}
	g.interleave(nStreams, n, func(slot int) *regionStream {
		return streams[slot%nStreams].nextRegion(g)
	})
}

func buildMixedSpatial(g *gen, n int) {
	// Family structure: ambiguity controls how many families share a
	// trigger offset (fotonik3d-like workloads are highly ambiguous).
	groups := 1
	if g.spec.ambiguity > 0 {
		groups = 1 + int(g.spec.ambiguity*4)
	}
	triggers := 10
	fams := g.familySet(groups, triggers, 2, 6, 24)
	str := g.newStream(32, g.spec.reuse, 1)
	noise := noiseOpts{early: 0.03, tail: 0.25}
	g.interleave(6, n, func(slot int) *regionStream {
		if slot == 0 {
			// Slot 0 is the dedicated streaming component.
			return str.nextRegion(g)
		}
		f := fams[g.r.Intn(len(fams))]
		page := g.distantFreshPage()
		if g.r.Bool(0.3) {
			page = g.revisitPage()
		}
		return g.activate(f, page, noise)
	})
}

func buildIrregular(g *gen, n int) {
	// Pointer chasing over a large working set with temporal (sequence)
	// repetition but no spatial structure: regions see 1-3 scattered
	// blocks, so spatial prefetchers should mostly stand down.
	wsPages := int(3000 * g.spec.intensity)
	if wsPages < 256 {
		wsPages = 256
	}
	pages := make([]uint64, wsPages)
	for i := range pages {
		pages[i] = g.distantFreshPage()
	}
	type step struct {
		page uint64
		off  int
	}
	seqLen := n / 3
	if seqLen < 1024 {
		seqLen = 1024
	}
	seq := make([]step, seqLen)
	for i := range seq {
		seq[i] = step{page: pages[g.r.Intn(wsPages)], off: g.r.Intn(mem.BlocksPerPage)}
	}
	pcs := g.pcPool(24)
	pos := 0
	for len(g.recs) < n {
		st := seq[pos%seqLen]
		if g.r.Bool(0.08) { // occasional novel access off the canonical walk
			st = step{page: pages[g.r.Intn(wsPages)], off: g.r.Intn(mem.BlocksPerPage)}
		}
		pc := pcs[pos%len(pcs)]
		g.emit(pc, uint64(mem.BlockAddr(st.page, st.off)), trace.Load)
		// Pointer-chased nodes are heap objects that often span a couple
		// of cache lines: a short spatial run follows ~a quarter of the
		// jumps, which is what keeps spatial prefetchers from losing
		// outright on mcf-like codes (their declines are bounded, Fig 11).
		if g.r.Bool(0.25) && st.off+1 < mem.BlocksPerPage {
			g.emit(pc, uint64(mem.BlockAddr(st.page, st.off+1)), trace.Load)
		}
		pos++
	}
}

func buildGraphInit(g *gen, n int) {
	// Data preparation: allocating and filling vertex/edge arrays —
	// almost pure streaming (Fig 10's small-suffix Ligra traces).
	nStreams := 3
	streams := make([]*stream, nStreams)
	for i := range streams {
		streams[i] = g.newStream(64, 0.1, 1)
	}
	sparsePCs := g.pcPool(2)
	g.interleave(nStreams+1, n, func(slot int) *regionStream {
		if slot == nStreams {
			// One slot of occasional metadata lookups.
			return &regionStream{
				page:  g.revisitPage(),
				pcs:   sparsePCs,
				order: []int{g.r.Intn(mem.BlocksPerPage)},
			}
		}
		return streams[slot].nextRegion(g)
	})
}

func buildGraphCompute(g *gen, n int) {
	// The §III-C scenario: a dense frontier stream (trigger 0, second 1,
	// fully dense) interleaved with neighbour runs (short sequential
	// bursts at random pages) and sparse vertex-state touches whose
	// trigger block is often 0 but whose footprint is nearly empty — the
	// regions a naively-applied dense pattern floods with useless
	// prefetches.
	frontier := g.newStream(48, 0.15, 1)
	runPC := g.pcPool(1)[0]
	vertexPCs := g.pcPool(3)
	sparsity := 0.30 + 0.25*g.intensityClamp01()
	g.interleave(6, n, func(slot int) *regionStream {
		if slot == 0 {
			// The frontier traversal owns one slot.
			return frontier.nextRegion(g)
		}
		roll := g.r.Float64()
		switch {
		case roll < 0.02:
			return frontier.nextRegion(g)
		case roll < 0.18+0.52*(1-sparsity)+0.2:
			// Neighbour run: 3-14 consecutive blocks somewhere random.
			length := 3 + g.r.Intn(12)
			start := g.r.Intn(mem.BlocksPerPage - length)
			page := g.distantFreshPage()
			if g.r.Bool(0.45) {
				page = g.revisitPage()
			}
			return &regionStream{
				page:  page,
				pcs:   []uint64{runPC},
				order: sequentialOrder(start, start+length-1),
			}
		default:
			// Sparse vertex-state region; trigger frequently at block 0.
			first := 0
			if !g.r.Bool(0.5) {
				first = g.r.Intn(mem.BlocksPerPage)
			}
			count := 1 + g.r.Intn(3)
			order := []int{first}
			for len(order) < count+1 {
				off := g.r.Intn(mem.BlocksPerPage)
				if off != first && (len(order) < 2 || off != order[1]) {
					// Keep the second offset away from 1 so these regions
					// are distinguishable from streaming starts.
					if len(order) == 1 && off == 1 {
						continue
					}
					order = append(order, off)
				}
			}
			page := g.revisitPage()
			if g.r.Bool(0.5) {
				page = g.distantFreshPage()
			}
			return &regionStream{page: page, pcs: vertexPCs, order: order}
		}
	})
}

func buildCloud(g *gen, n int) {
	// Scale-out server behaviour: many footprint families with shared
	// trigger offsets (coarse keys collide), rotating trigger PCs and
	// slow pattern churn (fine-grained PC keys must relearn), plus a hot
	// code/data set and a light streaming component.
	fams := g.familySet(5, 8, 4, 4, 16)
	hot := make([]uint64, 24)
	for i := range hot {
		hot[i] = g.distantFreshPage()
	}
	hotPCs := g.pcPool(6)
	str := g.newStream(16, 0.2, 1)
	noise := noiseOpts{early: 0.04, tail: 0.3}
	activations := 0
	g.interleave(8, n, func(slot int) *regionStream {
		if slot == 0 {
			return str.nextRegion(g)
		}
		roll := g.r.Float64()
		switch {
		case roll < 0.66:
			activations++
			f := fams[g.r.Intn(len(fams))]
			if activations%240 == 0 {
				fams[g.r.Intn(len(fams))].churn(g)
			}
			page := g.distantFreshPage()
			if g.r.Bool(0.35) {
				page = g.revisitPage()
			}
			return g.activate(f, page, noise)
		default:
			// Hot-set touch: near-certain cache hits (server locality).
			page := hot[g.r.Zipf(len(hot), 1.3)]
			return &regionStream{
				page:  page,
				pcs:   hotPCs,
				order: []int{g.r.Intn(8)},
			}
		}
	})
}

func buildServer(g *gen, n int) {
	// QMM srv: instruction-miss-bound in reality; for the data side this
	// means a small hot working set (low LLC data MPKI) plus occasional
	// sparse irregular touches. Prefetchers find little to cover; bad
	// ones pollute the small caches.
	hot := make([]uint64, 48)
	for i := range hot {
		hot[i] = g.distantFreshPage()
	}
	hotPCs := g.pcPool(8)
	fams := g.familySet(4, 6, 3, 3, 8)
	noise := noiseOpts{early: 0.06, tail: 0.35}
	g.interleave(4, n, func(slot int) *regionStream {
		roll := g.r.Float64()
		switch {
		case roll < 0.86:
			page := hot[g.r.Zipf(len(hot), 1.2)]
			return &regionStream{
				page:  page,
				pcs:   hotPCs,
				order: []int{g.r.Intn(mem.BlocksPerPage)},
			}
		case roll < 0.86+0.09:
			f := fams[g.r.Intn(len(fams))]
			return g.activate(f, g.distantFreshPage(), noise)
		default:
			return &regionStream{
				page:  g.distantFreshPage(),
				pcs:   hotPCs,
				order: g.distinctOffsets(1 + g.r.Intn(2)),
			}
		}
	})
}

func buildClient(g *gen, n int) {
	// QMM clt: memory-intensive compute — streaming and strided sweeps
	// with a moderate mixed-region component.
	s1 := g.newStream(48, 0.25, 1)
	s2 := g.newStream(48, 0.1, 2)
	fams := g.familySet(1, 8, 2, 8, 24)
	noise := noiseOpts{early: 0.03, tail: 0.2}
	g.interleave(5, n, func(slot int) *regionStream {
		if slot == 0 || slot == 1 {
			return s1.nextRegion(g)
		}
		if slot == 2 {
			return s2.nextRegion(g)
		}
		roll := g.r.Float64()
		switch {
		case roll < 0.3:
			return s1.nextRegion(g)
		default:
			f := fams[g.r.Intn(len(fams))]
			page := g.distantFreshPage()
			if g.r.Bool(0.3) {
				page = g.revisitPage()
			}
			return g.activate(f, page, noise)
		}
	})
}

// intensityClamp01 maps intensity into [0,1] for builders that use it as a
// mixing ratio rather than a size multiplier.
func (g *gen) intensityClamp01() float64 {
	v := g.spec.intensity
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
