// Example asyncsweep drives a Fig 16-style sensitivity campaign through
// the asynchronous jobs API end to end, without any external setup: it
// starts gazeserve's handler in-process (engine + durable jobs manager,
// exactly as cmd/gazeserve wires them), then acts as a client —
//
//  1. POST /jobs submits a multi-prefetcher DRAM-bandwidth sweep as a
//     background job and gets a content-addressed ID back immediately;
//  2. GET /jobs/{id}/events streams NDJSON progress (done/total, ETA)
//     while the engine grinds through the grid;
//  3. GET /jobs/{id}/result fetches the finished SweepResponse — the
//     same document, same per-row content addresses, a synchronous
//     POST /sweep would have returned;
//  4. a second submission of the same campaign coalesces onto the
//     finished job, and a freshly submitted second campaign is cancelled
//     mid-flight with DELETE /jobs/{id}.
//
// Against a separately running `gazeserve` binary the same requests work
// unchanged; point the http calls at its -addr instead.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	// Quick scale keeps the demo in seconds. The jobs journal lives in a
	// throwaway directory so the example leaves no files behind; point it
	// somewhere stable and queued campaigns survive restarts.
	eng := engine.New(engine.Options{Scale: engine.Quick})
	dir, err := os.MkdirTemp("", "asyncsweep-jobs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: server.Compiler(eng), Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(eng).AttachJobs(mgr).Handler()) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Println("gazeserve listening on", base, "— journal at", dir)

	campaign := map[string]any{
		"type": "sweep",
		"request": map[string]any{
			"traces":      []string{"lbm-1274", "bwaves_s-2609"},
			"prefetchers": []string{"IP-stride", "PMP", "Gaze"},
			"axis":        map[string]any{"param": "dram_mtps", "values": []float64{800, 1600, 3200}},
		},
	}

	// 1. Submit: 202 + content-addressed ID, long before any result exists.
	var job server.JobStatus
	post(base+"/jobs", campaign, &job)
	fmt.Printf("\nPOST /jobs → %s (%s)\n", job.ID[:12], job.State)

	// 2. Stream progress until the job finishes.
	fmt.Println("GET /jobs/" + job.ID[:12] + "/events:")
	resp, err := http.Get(base + "/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.JobStatus
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %2d/%2d done (%d cached)  elapsed %4dms  eta %4dms\n",
			ev.State, ev.Progress.Done, ev.Progress.Total, ev.Progress.Cached,
			ev.Progress.ElapsedMS, ev.Progress.RemainingMS)
	}
	resp.Body.Close()

	// 3. Fetch the finished document — the paper's Fig 16a curve.
	var result server.SweepResponse
	get(base+"/jobs/"+job.ID+"/result", &result)
	fmt.Println("\nGET /jobs/{id}/result — DRAM-bandwidth sensitivity (geomean speedup):")
	for _, p := range result.Sensitivity {
		fmt.Printf("  %5.0f MTPS  %-10s %.3f\n", p.Value, p.Prefetcher, p.GeomeanSpeedup)
	}

	// 4a. The same campaign resubmitted coalesces onto the finished job.
	var again server.JobStatus
	post(base+"/jobs", campaign, &again)
	fmt.Printf("\nresubmitted: coalesced=%v onto %s (%s)\n", again.Coalesced, again.ID[:12], again.State)

	// 4b. A fresh campaign, cancelled mid-flight: the engine stops at the
	// next shard boundary and the job lands in canceled with partial
	// progress (everything it did finish stays memoized).
	second := map[string]any{
		"type": "sweep",
		"request": map[string]any{
			"suite":       "gap",
			"prefetchers": []string{"IP-stride", "PMP", "Gaze"},
			"axis":        map[string]any{"param": "pq_capacity", "values": []float64{8, 16, 32, 64}},
		},
	}
	var cancelMe server.JobStatus
	post(base+"/jobs", second, &cancelMe)
	for !jobs.State(cancelMe.State).Terminal() {
		if cancelMe.State == string(jobs.Running) && cancelMe.Progress.Done > 0 {
			req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+cancelMe.ID, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
		}
		time.Sleep(5 * time.Millisecond)
		get(base+"/jobs/"+cancelMe.ID, &cancelMe)
	}
	fmt.Printf("second campaign: %s at %d/%d after DELETE\n",
		cancelMe.State, cancelMe.Progress.Done, cancelMe.Progress.Total)

	var stats server.StatsResponse
	get(base+"/stats", &stats)
	fmt.Printf("\nGET /stats jobs counters: %+v\n", *stats.Jobs)
}

func post(url string, req, resp any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		msg, _ := json.Marshal(req)
		log.Fatalf("POST %s (%s): status %d", url, msg, r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}

func get(url string, resp any) {
	r, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}
