package prefetch

// Pacer is the uniform Prefetch Buffer used by the spatial-pattern-based
// baselines (SMS, Bingo, DSPatch, PMP): predicted patterns enter a bounded
// FIFO and drain a few requests per observed access, so a 64-block dense
// prediction does not flood the downstream prefetch queue in one burst.
// The paper fine-tunes one PB design and uses it uniformly across the
// spatial prefetchers (§IV-A2); Gaze's own PB lives in internal/core.
type Pacer struct {
	buf      []Request
	capacity int
	perDrain int

	// Dropped counts requests lost to a full buffer.
	Dropped uint64
}

// NewPacer builds a pacer holding up to capacity requests and draining
// perDrain per Drain call.
func NewPacer(capacity, perDrain int) *Pacer {
	if capacity <= 0 || perDrain <= 0 {
		panic("prefetch: pacer capacity and drain must be positive")
	}
	return &Pacer{capacity: capacity, perDrain: perDrain}
}

// Push buffers a request, merging duplicates (keeping the stronger level).
func (p *Pacer) Push(req Request) {
	for i := range p.buf {
		if p.buf[i].VLine == req.VLine {
			if req.Level < p.buf[i].Level {
				p.buf[i].Level = req.Level
			}
			return
		}
	}
	if len(p.buf) >= p.capacity {
		p.Dropped++
		return
	}
	p.buf = append(p.buf, req)
}

// Drain forwards up to perDrain buffered requests to issue.
func (p *Pacer) Drain(issue IssueFunc) {
	n := p.perDrain
	if n > len(p.buf) {
		n = len(p.buf)
	}
	for i := 0; i < n; i++ {
		issue(p.buf[i])
	}
	p.buf = p.buf[:copy(p.buf, p.buf[n:])]
}

// Len returns the number of buffered requests.
func (p *Pacer) Len() int { return len(p.buf) }
